"""Tests for the linear-regression performance model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import DEFAULT_BASIS
from repro.core.model import HardwareStateKey, LinearPerfModel, required_state_keys
from repro.errors import ModelError, NotFittedError
from repro.gpu.mig import CORUN_STATES, MemoryOption, S1
from repro.gpu.spec import A100_SPEC
from repro.sim.counters import collect_counters
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture()
def profiles():
    return {
        name: collect_counters(DEFAULT_SUITE.get(name))
        for name in ("dgemm", "stream", "hgemm", "kmeans")
    }


def key(gpcs=4, mem_slices=8, option=MemoryOption.SHARED, power=250.0) -> HardwareStateKey:
    return HardwareStateKey(gpcs, mem_slices, option, power)


class TestHardwareStateKey:
    def test_from_state_extracts_per_app_view(self):
        from repro.gpu.spec import A100_SPEC

        key0 = HardwareStateKey.from_state(S1, 0, 230, A100_SPEC)
        key1 = HardwareStateKey.from_state(S1, 1, 230, A100_SPEC)
        assert key0.gpcs == 4 and key1.gpcs == 3
        assert key0.option is MemoryOption.SHARED
        assert key0.power_cap_w == 230.0
        # The shared option grants the full chip's memory slices.
        assert key0.mem_slices == 8 and key1.mem_slices == 8

    def test_from_state_private_uses_profile_table_slices(self):
        from repro.gpu.mig import S3
        from repro.gpu.spec import A100_SPEC

        key0 = HardwareStateKey.from_state(S3, 0, 230, A100_SPEC)
        key1 = HardwareStateKey.from_state(S3, 1, 230, A100_SPEC)
        # 4-GPC and 3-GPC private GIs both own 4 slices on the A100.
        assert key0.mem_slices == 4 and key1.mem_slices == 4

    def test_from_state_mixed_uses_hosting_gi_slices(self):
        from repro.gpu.mig import PartitionState
        from repro.gpu.spec import A100_SPEC

        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        shared0 = HardwareStateKey.from_state(state, 0, 230, A100_SPEC)
        private2 = HardwareStateKey.from_state(state, 2, 230, A100_SPEC)
        # Apps 0 and 1 share a 4-GPC GI (4 slices), app 2 owns a 3-GPC GI.
        assert shared0.option is MemoryOption.SHARED
        assert shared0.mem_slices == 4
        assert private2.option is MemoryOption.PRIVATE
        assert private2.mem_slices == 4

    def test_keys_are_hashable_and_comparable(self):
        assert key() == key()
        assert key() != key(gpcs=3)
        assert key() != key(mem_slices=4)
        assert len({key(), key(), key(gpcs=3), key(mem_slices=4)}) == 3

    def test_accepts_string_option(self):
        assert HardwareStateKey(4, 4, "private", 200).option is MemoryOption.PRIVATE

    def test_rejects_non_positive_mem_slices(self):
        with pytest.raises(ModelError):
            HardwareStateKey(4, 0, MemoryOption.SHARED, 250.0)

    def test_describe(self):
        assert key().describe() == "4GPCs/8sl/shared/250W"


class TestRequiredStateKeys:
    def test_paper_grid_produces_expected_keys(self):
        keys = required_state_keys(CORUN_STATES, (150.0, 250.0), A100_SPEC)
        # Per-application views: {3,4} GPCs x {private,shared} x 2 caps.
        assert len(keys) == 2 * 2 * 2
        assert all(k.gpcs in (3, 4) for k in keys)


class TestCoefficientManagement:
    def test_unfitted_model_raises(self, profiles):
        model = LinearPerfModel()
        with pytest.raises(NotFittedError):
            model.predict_solo(profiles["dgemm"], key())

    def test_set_and_get_scalability(self):
        model = LinearPerfModel()
        coeffs = np.arange(6, dtype=float)
        model.set_scalability_coefficients(key(), coeffs)
        assert model.has_scalability(key())
        assert np.allclose(model.scalability_coefficients(key()), coeffs)

    def test_coefficients_are_copied(self):
        model = LinearPerfModel()
        coeffs = np.ones(6)
        model.set_scalability_coefficients(key(), coeffs)
        coeffs[0] = 99.0
        assert model.scalability_coefficients(key())[0] == 1.0

    def test_wrong_shape_rejected(self):
        model = LinearPerfModel()
        with pytest.raises(ModelError):
            model.set_scalability_coefficients(key(), np.ones(4))
        with pytest.raises(ModelError):
            model.set_interference_coefficients(key(), np.ones(6))

    def test_interference_requires_fit(self, profiles):
        model = LinearPerfModel()
        model.set_scalability_coefficients(key(), np.ones(6))
        with pytest.raises(NotFittedError):
            model.predict_rperf(profiles["dgemm"], key(), [profiles["stream"]])
        with pytest.raises(NotFittedError):
            model.interference_coefficients(key())

    def test_fitted_state_listing(self):
        model = LinearPerfModel()
        model.set_scalability_coefficients(key(gpcs=3), np.ones(6))
        model.set_scalability_coefficients(key(gpcs=4), np.ones(6))
        states = model.fitted_scalability_states()
        assert len(states) == 2
        assert states[0].gpcs == 3


class TestPrediction:
    def test_solo_prediction_is_dot_product(self, profiles):
        model = LinearPerfModel()
        coeffs = np.array([0.1, 0.2, 0.0, 0.0, 0.0, 0.5])
        model.set_scalability_coefficients(key(), coeffs)
        expected = float(coeffs @ DEFAULT_BASIS.h(profiles["dgemm"]))
        assert model.predict_solo(profiles["dgemm"], key()) == pytest.approx(expected)

    def test_prediction_clamped_at_zero(self, profiles):
        model = LinearPerfModel()
        model.set_scalability_coefficients(key(), -np.ones(6))
        assert model.predict_solo(profiles["dgemm"], key()) == 0.0

    def test_interference_term_added(self, profiles):
        model = LinearPerfModel()
        model.set_scalability_coefficients(key(), np.array([0, 0, 0, 0, 0, 0.5]))
        model.set_interference_coefficients(key(), np.array([0.0, 0.0, -0.1]))
        solo = model.predict_rperf(profiles["dgemm"], key())
        with_partner = model.predict_rperf(profiles["dgemm"], key(), [profiles["stream"]])
        assert solo == pytest.approx(0.5)
        assert with_partner == pytest.approx(0.4)

    def test_predict_corun_uses_per_app_keys(self, profiles, trained_model):
        predictions = trained_model.predict_corun(
            [profiles["hgemm"], profiles["stream"]], S1, 250.0
        )
        assert len(predictions) == 2
        assert all(0.0 <= p <= 1.5 for p in predictions)

    def test_predict_corun_validates_length(self, profiles, trained_model):
        with pytest.raises(ModelError):
            trained_model.predict_corun([profiles["hgemm"]], S1, 250.0)


class TestPersistence:
    def test_roundtrip(self, trained_model, profiles):
        data = trained_model.to_dict()
        rebuilt = LinearPerfModel.from_dict(data)
        original = trained_model.predict_corun([profiles["hgemm"], profiles["stream"]], S1, 250.0)
        restored = rebuilt.predict_corun([profiles["hgemm"], profiles["stream"]], S1, 250.0)
        assert original == pytest.approx(restored)

    def test_rejects_wrong_format(self):
        with pytest.raises(ModelError):
            LinearPerfModel.from_dict({"format": "other"})

    def test_rejects_wrong_basis(self, trained_model):
        data = trained_model.to_dict()
        data["basis"] = "something-else"
        with pytest.raises(ModelError):
            LinearPerfModel.from_dict(data)

    def test_serialization_is_json_compatible(self, trained_model):
        import json

        text = json.dumps(trained_model.to_dict())
        assert "repro-linear-perf-model" in text
