"""Spec-generic partition-scheme contracts (the vendor-neutral refactor).

Two families of guarantees:

* **Properties over every spec** — for every entry in ``GPU_SPECS``
  (coupled-slice NVIDIA parts and the independent-axes ``mi300x`` alike),
  every enumerated partition state validates against its spec, state keys
  are unique, and no state hands out more compute units or memory domains
  than the chip has.  These hold by construction for the coupled scheme
  and must keep holding for every scheme a spec may carry.
* **Pinned NVIDIA parity** — A100/H100/A30 state enumeration and the
  ``repro states`` renderings are byte-identical to the outputs captured
  on main immediately before the ``PartitionScheme`` abstraction landed
  (``tests/data/states_<spec>_<n>.txt``), proving the coupled scheme is a
  faithful reimplementation rather than a behavioral rewrite.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.errors import PartitioningError
from repro.gpu.mig import MemoryOption, enumerate_partition_states
from repro.gpu.scheme import (
    CoupledSliceScheme,
    IndependentAxesScheme,
    MemoryPool,
)
from repro.gpu.spec import A100_SPEC, GPU_SPECS, MI300X_SPEC

DATA_DIR = Path(__file__).parent / "data"

#: Group sizes the property sweep enumerates per spec (1 = solo states).
SWEEP_SIZES = (1, 2, 3, 4)


def _all_states(spec, n_apps):
    return tuple(enumerate_partition_states(n_apps, spec))


class TestSchemeProperties:
    @pytest.mark.parametrize("spec_name", sorted(GPU_SPECS))
    @pytest.mark.parametrize("n_apps", SWEEP_SIZES)
    def test_enumerated_states_validate(self, spec_name, n_apps):
        spec = GPU_SPECS[spec_name]
        for state in _all_states(spec, n_apps):
            state.validate_against(spec)  # must not raise

    @pytest.mark.parametrize("spec_name", sorted(GPU_SPECS))
    @pytest.mark.parametrize("n_apps", SWEEP_SIZES)
    def test_state_keys_unique(self, spec_name, n_apps):
        spec = GPU_SPECS[spec_name]
        states = _all_states(spec, n_apps)
        keys = [state.key() for state in states]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("spec_name", sorted(GPU_SPECS))
    @pytest.mark.parametrize("n_apps", SWEEP_SIZES)
    def test_totals_never_exceed_spec(self, spec_name, n_apps):
        spec = GPU_SPECS[spec_name]
        for state in _all_states(spec, n_apps):
            assert sum(state.gpc_allocations) <= spec.mig_gpcs
            pools = spec.scheme.memory_pools(spec, state)
            assert sum(pool.mem_domains for pool in pools) <= spec.n_mem_slices
            covered = sorted(i for pool in pools for i in pool.members)
            assert covered == list(range(state.n_apps))

    @pytest.mark.parametrize("spec_name", sorted(GPU_SPECS))
    @pytest.mark.parametrize("n_apps", SWEEP_SIZES)
    def test_per_app_views_consistent(self, spec_name, n_apps):
        """Allocation views agree with the scheme's pool decomposition."""
        spec = GPU_SPECS[spec_name]
        for state in _all_states(spec, n_apps):
            for index in range(state.n_apps):
                allocation = state.allocation_for(index, spec)
                assert allocation.gpcs == state.gpc_allocations[index]
                assert 0 < allocation.mem_slices <= spec.n_mem_slices
                assert (
                    allocation.mem_slices
                    == state.mem_slices_for(index, spec)
                )

    @pytest.mark.parametrize("spec_name", sorted(GPU_SPECS))
    def test_enumeration_respects_co_location_ceiling(self, spec_name):
        spec = GPU_SPECS[spec_name]
        beyond = spec.scheme.max_co_located(spec) + 1
        assert _all_states(spec, beyond) == ()

    def test_memory_pools_flag_contention(self):
        spec = A100_SPEC
        shared = next(
            iter(enumerate_partition_states(2, spec, (MemoryOption.SHARED,)))
        )
        private = next(
            iter(enumerate_partition_states(2, spec, (MemoryOption.PRIVATE,)))
        )
        assert all(
            pool.contended for pool in spec.scheme.memory_pools(spec, shared)
        )
        assert not any(
            pool.contended for pool in spec.scheme.memory_pools(spec, private)
        )
        assert isinstance(spec.scheme.memory_pools(spec, shared)[0], MemoryPool)


class TestSchemeDispatch:
    def test_nvidia_specs_carry_coupled_scheme(self):
        for name in ("a100", "h100", "a30"):
            assert isinstance(GPU_SPECS[name].scheme, CoupledSliceScheme)

    def test_mi300x_carries_independent_axes(self):
        assert isinstance(MI300X_SPEC.scheme, IndependentAxesScheme)
        assert GPU_SPECS["mi300x"] is MI300X_SPEC

    def test_independent_axes_rejects_asymmetric_allocations(self):
        from repro.gpu.mig import PartitionState

        state = PartitionState((4, 3), MemoryOption.PRIVATE)
        with pytest.raises(PartitioningError):
            state.validate_against(MI300X_SPEC)

    def test_mi300x_private_memory_follows_nps(self):
        """NPS domains shrink as partitions multiply: g XCDs → g stacks."""
        for state in enumerate_partition_states(
            2, MI300X_SPEC, (MemoryOption.PRIVATE,)
        ):
            for index in range(state.n_apps):
                assert (
                    state.mem_slices_for(index, MI300X_SPEC)
                    == state.gpc_allocations[index]
                )


class TestPinnedNvidiaParity:
    """Enumeration and CLI output are byte-identical to pre-refactor main."""

    @pytest.mark.parametrize("spec_name", ("a100", "h100", "a30"))
    @pytest.mark.parametrize("n_apps", (1, 2, 3))
    def test_states_output_byte_identical(self, spec_name, n_apps):
        from repro import cli

        pinned = (DATA_DIR / f"states_{spec_name}_{n_apps}.txt").read_text()
        buffer = io.StringIO()
        status = cli.main(
            ["states", str(n_apps), "--spec", spec_name],
            out=lambda line: buffer.write(line + "\n"),
        )
        assert status == 0
        assert buffer.getvalue() == pinned

    def test_a100_pair_enumeration_pinned(self):
        """The S1–S4-bearing pair grid keeps its exact size and keys."""
        states = _all_states(A100_SPEC, 2)
        assert len(states) == 30
        shared = [
            s for s in states if s.option is MemoryOption.SHARED
        ]
        assert all(
            s.mem_slices_for(0, A100_SPEC) == A100_SPEC.n_mem_slices
            for s in shared
        )
