"""Tests for the telemetry recorder (nvidia-smi dmon stand-in)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.mig import S1, MemoryOption, solo_state
from repro.gpu.spec import A100_SPEC
from repro.gpu.telemetry import TelemetryRecorder, TelemetrySample, TelemetryTrace
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture()
def recorder():
    return TelemetryRecorder()


@pytest.fixture()
def solo_result(sim):
    return sim.solo_run(DEFAULT_SUITE.get("hgemm"), solo_state(7, MemoryOption.SHARED), 200)


@pytest.fixture()
def corun_result(sim):
    return sim.co_run(list(corun_pair("TI-MI2").kernels()), S1, 230)


class TestValidation:
    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetrySample(timestamp_s=-1.0, power_w=10, clock_ghz=1.0, busy_gpcs=1, dram_bandwidth_gbs=0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetryTrace(samples=(), power_cap_w=250, label="x")

    def test_invalid_recorder_config(self):
        with pytest.raises(ConfigurationError):
            TelemetryRecorder(sample_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            TelemetryRecorder(ramp_fraction=0.7)


class TestSoloTrace:
    def test_trace_spans_the_run(self, recorder, solo_result):
        trace = recorder.record_solo(solo_result)
        assert trace.duration_s == pytest.approx(solo_result.elapsed_s, rel=0.1)
        assert trace.label.startswith("hgemm")

    def test_power_never_exceeds_cap(self, recorder, solo_result):
        trace = recorder.record_solo(solo_result)
        assert trace.cap_violations == 0
        assert trace.peak_power_w <= solo_result.power_cap_w + 1e-6

    def test_steady_state_power_matches_model(self, recorder, solo_result):
        trace = recorder.record_solo(solo_result)
        assert trace.peak_power_w == pytest.approx(
            min(solo_result.chip_power_w, solo_result.power_cap_w), rel=0.01
        )

    def test_energy_is_consistent_with_average_power(self, recorder, solo_result):
        trace = recorder.record_solo(solo_result)
        assert trace.energy_joules == pytest.approx(
            trace.average_power_w * trace.duration_s, rel=0.25
        )
        assert trace.energy_joules <= solo_result.power_cap_w * solo_result.elapsed_s * 1.05

    def test_throttled_run_reports_throttling(self, recorder, solo_result):
        trace = recorder.record_solo(solo_result)
        assert solo_result.relative_frequency < 1.0
        assert trace.throttled_fraction(A100_SPEC.max_clock_ghz) > 0.5

    def test_unthrottled_run_reports_no_throttling(self, recorder, sim):
        run = sim.solo_run(DEFAULT_SUITE.get("kmeans"), solo_state(1, MemoryOption.PRIVATE), 250)
        trace = recorder.record_solo(run)
        assert trace.throttled_fraction(A100_SPEC.max_clock_ghz) == 0.0

    def test_as_rows_matches_samples(self, recorder, solo_result):
        trace = recorder.record_solo(solo_result)
        rows = trace.as_rows()
        assert len(rows) == len(trace.samples)
        assert rows[0][0] == trace.samples[0].timestamp_s


class TestCoRunAndSequenceTraces:
    def test_corun_trace_uses_longest_app(self, recorder, corun_result):
        trace = recorder.record_corun(corun_result)
        longest = max(run.elapsed_s for run in corun_result.per_app)
        assert trace.duration_s == pytest.approx(longest, rel=0.1)
        assert trace.cap_violations == 0

    def test_corun_bandwidth_bounded_by_chip(self, recorder, corun_result):
        trace = recorder.record_corun(corun_result)
        assert max(s.dram_bandwidth_gbs for s in trace.samples) <= A100_SPEC.dram_bandwidth_gbs

    def test_sequence_concatenates_runs(self, recorder, sim):
        runs = [
            sim.solo_run(DEFAULT_SUITE.get("dgemm"), solo_state(4, MemoryOption.PRIVATE), 250),
            sim.solo_run(DEFAULT_SUITE.get("stream"), solo_state(3, MemoryOption.SHARED), 250),
        ]
        trace = recorder.record_sequence(runs)
        assert trace.duration_s == pytest.approx(sum(r.elapsed_s for r in runs), rel=0.1)
        assert trace.label == "sequence"

    def test_sequence_requires_runs(self, recorder):
        with pytest.raises(ConfigurationError):
            recorder.record_sequence([])
