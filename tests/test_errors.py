"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    exception_types = [
        errors.ConfigurationError,
        errors.SpecificationError,
        errors.PartitioningError,
        errors.PowerCapError,
        errors.WorkloadError,
        errors.UnknownKernelError,
        errors.ProfileError,
        errors.MissingProfileError,
        errors.ModelError,
        errors.NotFittedError,
        errors.OptimizationError,
        errors.InfeasibleProblemError,
        errors.SimulationError,
        errors.SchedulingError,
    ]
    for exc_type in exception_types:
        assert issubclass(exc_type, errors.ReproError)


def test_specification_error_is_configuration_error():
    assert issubclass(errors.SpecificationError, errors.ConfigurationError)


def test_unknown_kernel_error_is_keyerror():
    assert issubclass(errors.UnknownKernelError, KeyError)


def test_missing_profile_error_is_keyerror():
    assert issubclass(errors.MissingProfileError, KeyError)


def test_not_fitted_error_is_model_error():
    assert issubclass(errors.NotFittedError, errors.ModelError)


def test_infeasible_is_optimization_error():
    assert issubclass(errors.InfeasibleProblemError, errors.OptimizationError)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.PartitioningError("boom")
