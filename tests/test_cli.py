"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(argv):
    """Run the CLI, capturing its output lines; returns (exit_code, text)."""
    lines: list[str] = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


class TestListAndClassify:
    def test_list_benchmarks(self):
        code, text = run_cli(["list-benchmarks"])
        assert code == 0
        assert "stream" in text and "hgemm" in text
        assert "tensor" in text

    def test_classify_matches_paper(self):
        code, text = run_cli(["classify"])
        assert code == 0
        assert "agreement with the paper's Table 7: 100%" in text


class TestScalability:
    def test_scalability_option_sweep(self):
        code, text = run_cli(["scalability", "stream"])
        assert code == 0
        assert "private" in text and "shared" in text

    def test_scalability_power_sweep(self):
        code, text = run_cli(["scalability", "hgemm", "--sweep-power"])
        assert code == 0
        assert "150W" in text and "250W" in text

    def test_unknown_kernel_is_an_error(self):
        code, text = run_cli(["scalability", "not-a-benchmark"])
        assert code == 2
        assert "error" in text.lower()


class TestDecide:
    def test_problem1_decision(self):
        code, text = run_cli(["decide", "igemm4", "stream", "--policy", "problem1", "--power-cap", "230"])
        assert code == 0
        assert "choose" in text
        assert "S1" in text  # evaluations table lists every candidate state

    def test_problem2_decision(self):
        code, text = run_cli(["decide", "srad", "needle", "--policy", "problem2", "--alpha", "0.2"])
        assert code == 0
        assert "problem2" in text

    def test_unprofiled_app_is_an_error(self):
        code, text = run_cli(["decide", "igemm4", "unknown-app"])
        assert code == 2
        assert "error" in text.lower()


class TestAccuracyAndFigures:
    def test_accuracy_summary(self):
        code, text = run_cli(["accuracy"])
        assert code == 0
        assert "throughput" in text and "fairness" in text

    @pytest.mark.parametrize("number", ["6", "9", "10"])
    def test_figure_regeneration(self, number):
        code, text = run_cli(["figure", number])
        assert code == 0
        assert len(text.splitlines()) >= 4

    def test_invalid_figure_number_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli(["figure", "7"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli([])
