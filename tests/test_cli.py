"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(argv):
    """Run the CLI, capturing its output lines; returns (exit_code, text)."""
    lines: list[str] = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


class TestListAndClassify:
    def test_list_benchmarks(self):
        code, text = run_cli(["list-benchmarks"])
        assert code == 0
        assert "stream" in text and "hgemm" in text
        assert "tensor" in text

    def test_classify_matches_paper(self):
        code, text = run_cli(["classify"])
        assert code == 0
        assert "agreement with the paper's Table 7: 100%" in text


class TestScalability:
    def test_scalability_option_sweep(self):
        code, text = run_cli(["scalability", "stream"])
        assert code == 0
        assert "private" in text and "shared" in text

    def test_scalability_power_sweep(self):
        code, text = run_cli(["scalability", "hgemm", "--sweep-power"])
        assert code == 0
        assert "150W" in text and "250W" in text

    def test_unknown_kernel_is_an_error(self):
        code, text = run_cli(["scalability", "not-a-benchmark"])
        assert code == 2
        assert "error" in text.lower()


class TestDecide:
    def test_problem1_decision(self):
        code, text = run_cli(["decide", "igemm4", "stream", "--policy", "problem1", "--power-cap", "230"])
        assert code == 0
        assert "choose" in text
        assert "S1" in text  # evaluations table lists every candidate state

    def test_problem2_decision(self):
        code, text = run_cli(["decide", "srad", "needle", "--policy", "problem2", "--alpha", "0.2"])
        assert code == 0
        assert "problem2" in text

    def test_unprofiled_app_is_an_error(self):
        code, text = run_cli(["decide", "igemm4", "unknown-app"])
        assert code == 2
        assert "error" in text.lower()


class TestSimulate:
    def test_synthetic_poisson_simulation(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "2.0", "--duration", "20", "--nodes", "2"]
        )
        assert code == 0
        assert "jobs over" in text  # trace summary
        assert "p99" in text and "utilization" in text and "energy" in text

    def test_jobs_cap_limits_the_trace(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "4.0", "--duration", "100",
             "--jobs", "10", "--nodes", "2"]
        )
        assert code == 0
        assert "10 jobs on 2 node(s)" in text

    def test_jobs_cap_applies_to_bursty_traces_too(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "4.0", "--duration", "100",
             "--burst-size", "3", "--jobs", "10", "--nodes", "2"]
        )
        assert code == 0
        assert "10 jobs on 2 node(s)" in text

    def test_pair_model_cache_rejected_for_nway_decide(self, tmp_path):
        model_path = tmp_path / "model.json"
        code, _ = run_cli(["decide", "igemm4", "stream", "--model", str(model_path)])
        assert code == 0
        code, text = run_cli(
            ["decide", "igemm4", "stream", "bfs", "--model", str(model_path)]
        )
        assert code == 4  # the stable model-cache exit code
        assert "different partition-state grid" in text

    def test_bursty_generator_and_budget(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "2.0", "--duration", "15",
             "--burst-size", "3", "--nodes", "2", "--power-budget", "420",
             "--repartition-latency", "0.5"]
        )
        assert code == 0
        assert "rebalances=" in text
        assert "power allocation" in text

    def test_trace_file_roundtrip(self, tmp_path):
        trace_path = tmp_path / "trace.csv"
        code, _ = run_cli(
            ["simulate", "--arrival-rate", "2.0", "--duration", "10",
             "--nodes", "1", "--save-trace", str(trace_path)]
        )
        assert code == 0
        code, text = run_cli(["simulate", "--trace", str(trace_path), "--nodes", "1"])
        assert code == 0
        assert "node(s)" in text

    def test_missing_trace_file_is_an_error(self):
        code, text = run_cli(["simulate", "--trace", "/nonexistent/trace.csv"])
        assert code == 2
        assert "error" in text.lower()

    def test_profile_appends_hotspot_report(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "2.0", "--duration", "10",
             "--nodes", "1", "--jobs", "10", "--profile", "5"]
        )
        assert code == 0
        # The normal report still renders, followed by the profile table.
        assert "node(s)" in text
        assert "top 5 call sites by cumulative time" in text
        assert "cumulative[s]" in text
        # The simulator's event loop must show up among the hot spots.
        assert "run" in text

    def test_profile_conflicts_with_json(self):
        code, text = run_cli(
            ["simulate", "--duration", "5", "--jobs", "2", "--profile", "--json"]
        )
        assert code == 2
        assert "--profile cannot be combined with --json" in text

    def test_mix_selects_application_population(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "3.0", "--duration", "10",
             "--nodes", "1", "--mix", "tensor-heavy", "--seed", "3"]
        )
        assert code == 0

    def test_model_cache_round_trip(self, tmp_path):
        model_path = tmp_path / "model.json"
        code, first = run_cli(
            ["decide", "igemm4", "stream", "--policy", "problem1",
             "--power-cap", "230", "--model", str(model_path)]
        )
        assert code == 0
        assert model_path.exists()
        code, second = run_cli(
            ["decide", "igemm4", "stream", "--policy", "problem1",
             "--power-cap", "230", "--model", str(model_path)]
        )
        assert code == 0
        # The cached run reproduces the trained decision verbatim.
        assert first.splitlines()[0] == second.splitlines()[0]

    def test_simulate_accepts_model_cache(self, tmp_path):
        model_path = tmp_path / "model.json"
        args = ["simulate", "--arrival-rate", "2.0", "--duration", "10",
                "--nodes", "1", "--model", str(model_path)]
        code, _ = run_cli(args)
        assert code == 0
        assert model_path.exists()
        code, _ = run_cli(args)
        assert code == 0


class TestExitCodes:
    """One stable exit code per ReproError family, mapped in one place."""

    def test_exit_code_map_is_most_specific_first(self):
        from repro.cli import (
            EXIT_CONFIG,
            EXIT_INFEASIBLE,
            EXIT_MODEL_CACHE,
            exit_code_for,
        )
        from repro.errors import (
            ConfigurationError,
            InfeasibleProblemError,
            ModelCacheError,
            OptimizationError,
            ReproError,
            TraceError,
        )

        assert exit_code_for(ModelCacheError("stale")) == EXIT_MODEL_CACHE == 4
        assert exit_code_for(InfeasibleProblemError("no candidate")) == EXIT_INFEASIBLE == 3
        assert exit_code_for(OptimizationError("boom")) == EXIT_INFEASIBLE
        assert exit_code_for(ConfigurationError("bad")) == EXIT_CONFIG == 2
        assert exit_code_for(TraceError("bad trace")) == EXIT_CONFIG
        assert exit_code_for(ReproError("generic")) == EXIT_CONFIG

    def test_infeasible_problem_exits_3(self):
        code, text = run_cli(
            ["decide", "igemm4", "stream", "--policy", "problem1",
             "--power-cap", "230", "--alpha", "0.99"]
        )
        assert code == 3
        assert "fairness constraint" in text

    def test_configuration_error_exits_2(self):
        code, text = run_cli(
            ["decide", "igemm4", "stream", "--alpha", "1.5"]
        )
        assert code == 2
        assert "alpha" in text


class TestAccuracyAndFigures:
    def test_accuracy_summary(self):
        code, text = run_cli(["accuracy"])
        assert code == 0
        assert "throughput" in text and "fairness" in text

    @pytest.mark.parametrize("number", ["6", "9", "10"])
    def test_figure_regeneration(self, number):
        code, text = run_cli(["figure", number])
        assert code == 0
        assert len(text.splitlines()) >= 4

    def test_invalid_figure_number_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli(["figure", "7"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli([])
