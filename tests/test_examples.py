"""Smoke tests: every example script must run end to end.

The examples are part of the public deliverable; these tests import each one
as a module and execute its ``main()`` so that API drift breaks the build
instead of the documentation.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXAMPLES = [
    "quickstart",
    "scalability_study",
    "power_capped_coscheduling",
    "cluster_job_manager",
    "telemetry_and_export",
    "nway_colocation",
    "trace_simulation",
    "api_quickstart",
]


def load_example(name: str):
    """Import an example script as a module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contains_all_documented_scripts():
    present = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert set(EXAMPLES) <= present


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_to_completion(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert len(output.splitlines()) > 3


def test_quickstart_selects_a_near_optimal_state(capsys):
    module = load_example("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "selected state achieves" in output
    percentage = float(output.rsplit("achieves", 1)[1].split("%")[0])
    assert percentage >= 90.0
