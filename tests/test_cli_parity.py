"""CLI parity: the thin client over PlannerService renders byte-identical
text to the pre-service CLI, which built the workflow per invocation.

The "legacy" expectations are reconstructed inline exactly the way the
old ``repro.cli`` command implementations did — ``PaperWorkflow`` +
``decision.describe()`` + ``ascii_table`` — so any drift in the service
path (training plan, candidate grid, rendering) fails these assertions.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import ascii_table
from repro.cli import main
from repro.core.workflow import PaperWorkflow
from repro.gpu.mig import enumerate_partition_states
from repro.gpu.spec import spec_by_name


def run_cli(argv):
    lines: list[str] = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


@pytest.fixture(scope="module")
def trained_pair_workflow():
    workflow = PaperWorkflow()
    workflow.train()
    return workflow


def legacy_decide_text(workflow: PaperWorkflow, apps, policy, power_cap, alpha) -> str:
    """The pre-service `decide` rendering, verbatim."""
    if policy == "problem1":
        decision = workflow.decide_problem1(apps, power_cap, alpha)
    else:
        decision = workflow.decide_problem2(apps, alpha)
    lines = [decision.describe(), ""]
    rows = [
        (
            e.state.label or e.state.describe(),
            f"{e.power_cap_w:.0f}",
            f"{e.predicted_throughput:.3f}",
            f"{e.predicted_fairness:.3f}",
            f"{e.objective:.5f}",
            "yes" if e.feasible else "no",
        )
        for e in decision.evaluations
    ]
    lines.append(
        ascii_table(["state", "P[W]", "throughput", "fairness", "objective", "feasible"], rows)
    )
    return "\n".join(lines)


class TestDecideParity:
    def test_problem1_text_is_identical(self, trained_pair_workflow):
        code, text = run_cli(
            ["decide", "igemm4", "stream", "--policy", "problem1", "--power-cap", "230"]
        )
        assert code == 0
        assert text == legacy_decide_text(
            trained_pair_workflow, ["igemm4", "stream"], "problem1", 230.0, 0.2
        )

    def test_problem2_text_is_identical(self, trained_pair_workflow):
        code, text = run_cli(
            ["decide", "srad", "needle", "--policy", "problem2", "--alpha", "0.2"]
        )
        assert code == 0
        assert text == legacy_decide_text(
            trained_pair_workflow, ["srad", "needle"], "problem2", None, 0.2
        )

    def test_default_power_cap_matches_legacy_92_percent_point(self, trained_pair_workflow):
        from repro.config import DEFAULT_POWER_CAPS

        code, text = run_cli(["decide", "igemm4", "stream", "--policy", "problem1"])
        assert code == 0
        assert text == legacy_decide_text(
            trained_pair_workflow,
            ["igemm4", "stream"],
            "problem1",
            DEFAULT_POWER_CAPS[-2],
            0.2,
        )


class TestStatesParity:
    @pytest.mark.parametrize("argv,n_apps,spec_name", [
        (["states", "2"], 2, "a100"),
        (["states", "3", "--spec", "a30"], 3, "a30"),
    ])
    def test_states_text_is_identical(self, argv, n_apps, spec_name):
        spec = spec_by_name(spec_name)
        states = tuple(enumerate_partition_states(n_apps, spec))
        rows = [
            (
                state.describe(),
                state.option.value,
                state.total_gpcs,
                "-".join(str(a.mem_slices) for a in state.allocations(spec)),
            )
            for state in states
        ]
        expected = "\n".join(
            [
                ascii_table(["state", "option", "GPCs", "mem slices/app"], rows),
                f"\n{len(states)} realizable state(s) for {n_apps} "
                f"application(s) on {spec.name}",
            ]
        )
        code, text = run_cli(argv)
        assert code == 0
        assert text == expected


class TestSimulateParity:
    def test_simulate_text_is_identical(self, trained_pair_workflow):
        from repro.cluster.events import ClusterSimulator
        from repro.cluster.scheduler import SchedulerConfig
        from repro.traces import poisson_trace
        from repro.workloads.mixes import mix_by_name

        # The legacy command path, inlined: generate the trace, train (the
        # shared fixture), build the simulator from the workflow, render.
        trace = poisson_trace(
            arrival_rate_per_s=2.0, duration_s=15.0, n_jobs=None, seed=5,
            mix=mix_by_name("steady"),
        )
        simulator = ClusterSimulator.from_workflow(
            trained_pair_workflow,
            n_nodes=2,
            scheduler_config=SchedulerConfig(
                window_size=4, group_size=2, policy_name="problem2",
                power_cap_w=230.0, alpha=0.2,
            ),
        )
        report = simulator.run(trace, suite=trained_pair_workflow.suite)
        expected = "\n".join([trace.summary(), "", report.summary()])

        code, text = run_cli(
            ["simulate", "--arrival-rate", "2.0", "--duration", "15",
             "--nodes", "2", "--seed", "5"]
        )
        assert code == 0
        assert text == expected


class TestJsonMode:
    def test_decide_json_parses_and_matches_text_decision(self):
        code, text = run_cli(
            ["decide", "igemm4", "stream", "--policy", "problem1",
             "--power-cap", "230", "--json"]
        )
        assert code == 0
        document = json.loads(text)
        assert document["policy"] == "problem1-throughput"
        assert document["apps"] == ["igemm4", "stream"]
        assert document["state_label"] in {"S1", "S2", "S3", "S4"}
        assert document["power_cap_w"] == 230.0
        assert len(document["evaluations"]) == document["candidates_evaluated"]

    def test_states_json_parses(self):
        code, text = run_cli(["states", "2", "--json"])
        assert code == 0
        document = json.loads(text)
        assert document["n_apps"] == 2
        assert len(document["states"]) == 30  # the spec-derived pair grid
        assert {row["option"] for row in document["states"]} == {"shared", "private"}

    def test_simulate_json_parses(self):
        code, text = run_cli(
            ["simulate", "--arrival-rate", "2.0", "--duration", "10",
             "--nodes", "1", "--json"]
        )
        assert code == 0
        document = json.loads(text)
        assert document["n_nodes"] == 1
        assert document["n_jobs"] > 0
        assert set(document["wait"]) == {"mean_s", "p50_s", "p95_s", "p99_s", "max_s"}
        assert "report_summary" in document
