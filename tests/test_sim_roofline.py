"""Tests for the roofline time composition."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.gpu.spec import A100_SPEC
from repro.sim.roofline import TimeComponents, bound_of, elapsed_time, scale_components
from repro.workloads.suite import DEFAULT_SUITE


class TestTimeComponents:
    def test_negative_component_rejected(self):
        with pytest.raises(SimulationError):
            TimeComponents(-0.1, 0.2, 0.0)

    def test_elapsed_is_max_plus_serial(self):
        components = TimeComponents(0.8, 0.3, 0.1)
        assert elapsed_time(components) == pytest.approx(0.9)

    def test_memory_bound_elapsed(self):
        components = TimeComponents(0.2, 0.9, 0.05)
        assert elapsed_time(components) == pytest.approx(0.95)


class TestBoundClassification:
    def test_compute_bound(self):
        assert bound_of(TimeComponents(0.9, 0.2, 0.01)) == "compute"

    def test_memory_bound(self):
        assert bound_of(TimeComponents(0.2, 0.9, 0.01)) == "memory"

    def test_serial_bound(self):
        assert bound_of(TimeComponents(0.01, 0.02, 0.9)) == "serial"


class TestScaling:
    @pytest.fixture()
    def kernel(self):
        return DEFAULT_SUITE.get("dgemm")

    def test_compute_scales_with_gpcs(self, kernel):
        full = scale_components(kernel, A100_SPEC, gpcs=8, bandwidth_fraction=1.0, relative_frequency=1.0)
        half = scale_components(kernel, A100_SPEC, gpcs=4, bandwidth_fraction=1.0, relative_frequency=1.0)
        assert half.compute_s == pytest.approx(2 * full.compute_s)
        assert half.memory_s == pytest.approx(full.memory_s)
        assert half.serial_s == pytest.approx(full.serial_s)

    def test_compute_scales_with_frequency(self, kernel):
        fast = scale_components(kernel, A100_SPEC, 8, 1.0, 1.0)
        slow = scale_components(kernel, A100_SPEC, 8, 1.0, 0.5)
        assert slow.compute_s == pytest.approx(2 * fast.compute_s)
        assert slow.memory_s == pytest.approx(fast.memory_s)

    def test_memory_scales_with_bandwidth(self, kernel):
        full = scale_components(kernel, A100_SPEC, 8, 1.0, 1.0)
        half = scale_components(kernel, A100_SPEC, 8, 0.5, 1.0)
        assert half.memory_s == pytest.approx(2 * full.memory_s)
        assert half.compute_s == pytest.approx(full.compute_s)

    def test_penalties_inflate_components(self, kernel):
        base = scale_components(kernel, A100_SPEC, 8, 1.0, 1.0)
        penalized = scale_components(
            kernel, A100_SPEC, 8, 1.0, 1.0, compute_penalty=1.2, memory_penalty=1.5
        )
        assert penalized.compute_s == pytest.approx(1.2 * base.compute_s)
        assert penalized.memory_s == pytest.approx(1.5 * base.memory_s)

    def test_invalid_gpcs_rejected(self, kernel):
        with pytest.raises(SimulationError):
            scale_components(kernel, A100_SPEC, 0, 1.0, 1.0)
        with pytest.raises(SimulationError):
            scale_components(kernel, A100_SPEC, 9, 1.0, 1.0)

    def test_invalid_bandwidth_rejected(self, kernel):
        with pytest.raises(SimulationError):
            scale_components(kernel, A100_SPEC, 8, 0.0, 1.0)

    def test_invalid_frequency_rejected(self, kernel):
        with pytest.raises(SimulationError):
            scale_components(kernel, A100_SPEC, 8, 1.0, 0.0)

    def test_penalties_below_one_rejected(self, kernel):
        with pytest.raises(SimulationError):
            scale_components(kernel, A100_SPEC, 8, 1.0, 1.0, compute_penalty=0.9)
