"""Tests for profile records, the collector, and the database."""

from __future__ import annotations

import json

import pytest

from repro.errors import MissingProfileError, ProfileError
from repro.profiling.database import ProfileDatabase
from repro.profiling.profiler import ProfileCollector
from repro.profiling.records import ProfileRecord
from repro.sim.counters import CounterVector
from repro.workloads.suite import DEFAULT_SUITE


def make_record(name="stream", reference=1.0):
    counters = CounterVector(50, 60, 55, 10, 70, 0, 0, 0)
    return ProfileRecord(name=name, counters=counters, reference_time_s=reference)


class TestProfileRecord:
    def test_requires_name(self):
        with pytest.raises(ProfileError):
            make_record(name="")

    def test_requires_positive_reference(self):
        with pytest.raises(ProfileError):
            make_record(reference=0.0)

    def test_dict_roundtrip(self):
        record = make_record()
        rebuilt = ProfileRecord.from_dict(record.to_dict())
        assert rebuilt.name == record.name
        assert rebuilt.counters == record.counters
        assert rebuilt.reference_time_s == record.reference_time_s

    def test_from_dict_missing_field(self):
        with pytest.raises(ProfileError):
            ProfileRecord.from_dict({"name": "x"})


class TestProfileCollector:
    def test_collect_returns_record(self, sim):
        collector = ProfileCollector(sim)
        record = collector.collect(DEFAULT_SUITE.get("hgemm"))
        assert record.name == "hgemm"
        assert record.reference_time_s == pytest.approx(
            sim.reference_time(DEFAULT_SUITE.get("hgemm"))
        )
        assert record.counters.tensor_mixed > 0
        assert "device" in record.metadata

    def test_collect_many(self, sim):
        collector = ProfileCollector(sim)
        records = collector.collect_many([DEFAULT_SUITE.get("stream"), DEFAULT_SUITE.get("lud")])
        assert set(records) == {"stream", "lud"}

    def test_collect_into_skips_existing(self, sim):
        collector = ProfileCollector(sim)
        database = ProfileDatabase()
        database.add(make_record("stream", reference=123.0))
        collector.collect_into([DEFAULT_SUITE.get("stream")], database)
        assert database.get("stream").reference_time_s == 123.0

    def test_collect_into_overwrite(self, sim):
        collector = ProfileCollector(sim)
        database = ProfileDatabase()
        database.add(make_record("stream", reference=123.0))
        collector.collect_into([DEFAULT_SUITE.get("stream")], database, overwrite=True)
        assert database.get("stream").reference_time_s != 123.0

    def test_default_simulator_is_created(self):
        collector = ProfileCollector()
        assert collector.simulator is not None


class TestProfileDatabase:
    def test_add_and_get(self):
        database = ProfileDatabase()
        database.add(make_record())
        assert database.has("stream")
        assert "stream" in database
        assert len(database) == 1
        assert database.get("stream").name == "stream"

    def test_get_missing_raises(self):
        with pytest.raises(MissingProfileError):
            ProfileDatabase().get("nope")

    def test_duplicate_add_rejected(self):
        database = ProfileDatabase()
        database.add(make_record())
        with pytest.raises(ProfileError):
            database.add(make_record())
        database.add(make_record(reference=9.0), overwrite=True)
        assert database.get("stream").reference_time_s == 9.0

    def test_remove(self):
        database = ProfileDatabase()
        database.add(make_record())
        database.remove("stream")
        assert not database.has("stream")
        with pytest.raises(MissingProfileError):
            database.remove("stream")

    def test_names_and_iteration_sorted(self):
        database = ProfileDatabase()
        database.add(make_record("zeta"))
        database.add(make_record("alpha"))
        assert database.names() == ("alpha", "zeta")
        assert list(database) == ["alpha", "zeta"]

    def test_clear(self):
        database = ProfileDatabase()
        database.add(make_record())
        database.clear()
        assert len(database) == 0

    def test_save_and_load_roundtrip(self, tmp_path):
        database = ProfileDatabase()
        database.add(make_record("a", 1.5))
        database.add(make_record("b", 2.5))
        path = database.save(tmp_path / "profiles.json")
        loaded = ProfileDatabase.load(path)
        assert loaded.names() == ("a", "b")
        assert loaded.get("a").reference_time_s == 1.5

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ProfileError):
            ProfileDatabase.load(tmp_path / "missing.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json {")
        with pytest.raises(ProfileError):
            ProfileDatabase.load(path)

    def test_from_dict_rejects_other_formats(self):
        with pytest.raises(ProfileError):
            ProfileDatabase.from_dict({"format": "something-else"})

    def test_saved_file_is_valid_json(self, tmp_path):
        database = ProfileDatabase()
        database.add(make_record())
        path = database.save(tmp_path / "db.json")
        data = json.loads(path.read_text())
        assert data["format"] == "repro-profile-database"
        assert len(data["profiles"]) == 1


class TestHotspotProfiler:
    def test_profiled_block_shows_up_in_hotspots(self):
        from repro.profiling import HotspotProfiler

        def busy_work():
            return sum(i * i for i in range(20_000))

        profiler = HotspotProfiler()
        with profiler:
            busy_work()
        spots = profiler.hotspots(top=10)
        assert spots
        assert any("busy_work" in spot.location for spot in spots)
        # Heaviest first, and every row carries sane counters.
        cumulative = [spot.cumulative_time_s for spot in spots]
        assert cumulative == sorted(cumulative, reverse=True)
        assert all(spot.calls >= 1 for spot in spots)

    def test_report_renders_a_table(self):
        from repro.profiling import HotspotProfiler

        profiler = HotspotProfiler()
        with profiler:
            sorted(range(1000), key=lambda x: -x)
        report = profiler.report(top=3)
        lines = report.splitlines()
        assert "cumulative[s]" in lines[0]
        assert len(lines) <= 4

    def test_report_before_profiling_rejected(self):
        from repro.errors import ConfigurationError
        from repro.profiling import HotspotProfiler

        profiler = HotspotProfiler()
        with pytest.raises(ConfigurationError):
            profiler.report()
        with profiler:
            pass
        with pytest.raises(ConfigurationError):
            profiler.hotspots(top=0)
