"""Tests for the future-work extensions (flexible partitioning, validation)."""

from __future__ import annotations

import pytest

from repro.analysis.extensions import (
    flexible_partitioning_study,
    held_out_pair_validation,
    leave_one_out_validation,
)
from repro.gpu.mig import enumerate_corun_states
from repro.gpu.spec import A100_SPEC
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.pairs import CORUN_PAIRS, corun_pair
from repro.workloads.suite import DEFAULT_SUITE


class TestFlexiblePartitioning:
    @pytest.fixture(scope="class")
    def study(self):
        pairs = [corun_pair(n) for n in ("TI-MI2", "CI-US1", "MI-MI2", "TI-US1", "CI-CI1")]
        return flexible_partitioning_study(
            simulator=PerformanceSimulator(noise=no_noise()),
            pairs=pairs,
        )

    def test_state_space_is_larger_than_the_papers(self, study):
        assert study.n_states == len(enumerate_corun_states(A100_SPEC))
        assert study.n_states > 4

    def test_flexible_best_never_below_paper_best(self, study):
        for row in study.rows:
            assert row.best_flexible_states >= row.best_paper_states - 1e-9
        assert study.mean_flexibility_gain >= 1.0

    def test_allocator_captures_most_of_the_flexible_optimum(self, study):
        assert study.mean_proposal_vs_best > 0.85
        for row in study.rows:
            assert row.proposal_vs_best > 0.75

    def test_rows_cover_requested_pairs(self, study):
        assert {row.pair for row in study.rows} == {
            "TI-MI2", "CI-US1", "MI-MI2", "TI-US1", "CI-CI1"
        }


class TestLeaveOneOutValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return leave_one_out_validation(
            simulator=PerformanceSimulator(noise=no_noise()),
            power_caps=(250.0,),
        )

    def test_every_benchmark_is_evaluated(self, result):
        assert set(result.per_benchmark_error_pct) == set(DEFAULT_SUITE.names())

    def test_mean_error_is_reasonable(self, result):
        assert 0.0 < result.mean_error_pct < 30.0

    def test_worst_benchmark_consistent_with_table(self, result):
        worst = result.worst_benchmark
        assert result.error_of(worst) == max(result.per_benchmark_error_pct.values())


class TestHeldOutPairValidation:
    def test_held_out_pairs_are_predictable(self, context):
        result = held_out_pair_validation(context, held_out_pairs=("TI-MI2", "CI-US1"),
                                          power_caps=(250.0,))
        assert set(result.per_pair_error_pct) == {"TI-MI2", "CI-US1"}
        assert 0.0 < result.mean_error_pct < 30.0

    def test_all_pairs_available_for_exclusion(self):
        names = {pair.name for pair in CORUN_PAIRS}
        assert {"TI-MI2", "CI-US1", "MI-MI2"} <= names
