"""Tests for compute nodes and the cluster power-budget manager."""

from __future__ import annotations

import pytest

from repro.cluster.node import ComputeNode
from repro.cluster.powerbudget import ClusterPowerManager, PowerRequest
from repro.errors import ConfigurationError, PowerCapError
from repro.gpu.mig import S1
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE


class TestComputeNode:
    @pytest.fixture()
    def node(self):
        return ComputeNode(node_id=0, simulator=PerformanceSimulator(noise=no_noise()))

    def test_starts_free_and_unpartitioned(self, node):
        assert node.is_free(0.0)
        assert node.current_partition is None
        assert node.power_limit_w == node.spec.default_power_limit_w

    def test_configure_applies_partition_and_cap(self, node):
        uuids = node.configure(S1, 210)
        assert len(uuids) == 2
        assert node.current_partition is S1
        assert node.power_limit_w == pytest.approx(210)

    def test_release_clears_partition(self, node):
        node.configure(S1, 210)
        node.release()
        assert node.current_partition is None

    def test_execute_pair_returns_measured_result(self, node):
        kernels = list(corun_pair("CI-US1").kernels())
        result = node.execute_pair(kernels, S1, 230)
        assert result.n_apps == 2
        assert result.power_cap_w == 230
        # The node tears the partition down after the run.
        assert node.current_partition is None

    def test_execute_exclusive_matches_reference_time(self, node):
        kernel = DEFAULT_SUITE.get("dgemm")
        assert node.execute_exclusive(kernel) == pytest.approx(
            node.simulator.reference_time(kernel)
        )

    def test_busy_window(self, node):
        node.busy_until = 10.0
        assert not node.is_free(5.0)
        assert node.is_free(10.0)


class TestPowerRequest:
    def test_valid_request(self):
        request = PowerRequest(node_id=0, desired_w=230, minimum_w=100)
        assert request.desired_w == 230

    def test_desired_below_minimum_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerRequest(node_id=0, desired_w=90, minimum_w=100)

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerRequest(node_id=0, desired_w=0, minimum_w=0)


class TestClusterPowerManager:
    @pytest.fixture()
    def manager(self):
        return ClusterPowerManager()

    def test_empty_requests(self, manager):
        assert manager.distribute([], 1000.0) == {}

    def test_ample_budget_grants_everyone_their_wish(self, manager):
        requests = [
            PowerRequest(0, desired_w=250, minimum_w=100),
            PowerRequest(1, desired_w=150, minimum_w=100),
        ]
        allocation = manager.distribute(requests, total_budget_w=500)
        assert allocation[0] == pytest.approx(250)
        assert allocation[1] == pytest.approx(150)

    def test_scarce_budget_scales_extras_proportionally(self, manager):
        requests = [
            PowerRequest(0, desired_w=300, minimum_w=100),
            PowerRequest(1, desired_w=200, minimum_w=100),
        ]
        allocation = manager.distribute(requests, total_budget_w=350)
        assert sum(allocation.values()) == pytest.approx(350)
        # Minimums are honoured and the remaining 150 W is split 2:1.
        assert allocation[0] == pytest.approx(100 + 100)
        assert allocation[1] == pytest.approx(100 + 50)

    def test_budget_below_minimums_rejected(self, manager):
        requests = [PowerRequest(0, desired_w=200, minimum_w=150)]
        with pytest.raises(PowerCapError):
            manager.distribute(requests, total_budget_w=100)

    def test_invalid_budget_rejected(self, manager):
        with pytest.raises(ConfigurationError):
            manager.distribute([PowerRequest(0, 200, 100)], total_budget_w=0)

    def test_allocation_never_exceeds_device_maximum(self, manager):
        requests = [PowerRequest(0, desired_w=300, minimum_w=100)]
        allocation = manager.distribute(requests, total_budget_w=1000)
        assert allocation[0] <= manager._spec.max_power_cap_w

    def test_headroom(self, manager):
        requests = [PowerRequest(0, desired_w=150, minimum_w=100)]
        allocation = manager.distribute(requests, total_budget_w=400)
        assert manager.headroom(allocation, 400) == pytest.approx(250)


class TestOversubscribedBudgets:
    """The regime the event simulator exercises: demand exceeds the budget."""

    @pytest.fixture()
    def manager(self):
        return ClusterPowerManager()

    def test_budget_exactly_at_minimums_grants_minimums_only(self, manager):
        requests = [
            PowerRequest(0, desired_w=250, minimum_w=100),
            PowerRequest(1, desired_w=250, minimum_w=100),
        ]
        allocation = manager.distribute(requests, total_budget_w=200)
        assert allocation == {0: pytest.approx(100), 1: pytest.approx(100)}
        assert manager.headroom(allocation, 200) == pytest.approx(0.0)

    def test_oversubscribed_budget_is_fully_spent(self, manager):
        requests = [
            PowerRequest(node_id, desired_w=250, minimum_w=100)
            for node_id in range(4)
        ]
        allocation = manager.distribute(requests, total_budget_w=700)
        assert sum(allocation.values()) == pytest.approx(700)
        # Equal demand: the shortage is shared equally.
        assert all(watts == pytest.approx(175) for watts in allocation.values())

    def test_unequal_extras_share_shortage_proportionally(self, manager):
        requests = [
            PowerRequest(0, desired_w=300, minimum_w=100),  # +200 extra
            PowerRequest(1, desired_w=150, minimum_w=100),  # +50 extra
        ]
        allocation = manager.distribute(requests, total_budget_w=300)
        # 100 W of extras split 200:50 = 4:1.
        assert allocation[0] == pytest.approx(100 + 80)
        assert allocation[1] == pytest.approx(100 + 20)

    def test_no_node_gets_more_than_it_desired(self, manager):
        requests = [
            PowerRequest(0, desired_w=120, minimum_w=100),
            PowerRequest(1, desired_w=290, minimum_w=100),
        ]
        allocation = manager.distribute(requests, total_budget_w=400)
        assert allocation[0] <= 120 + 1e-9
        assert allocation[1] <= 290 + 1e-9

    def test_single_watt_of_slack_distributes_without_error(self, manager):
        requests = [
            PowerRequest(0, desired_w=250, minimum_w=100),
            PowerRequest(1, desired_w=250, minimum_w=100),
        ]
        allocation = manager.distribute(requests, total_budget_w=201)
        assert sum(allocation.values()) == pytest.approx(201)
        assert min(allocation.values()) >= 100

    def test_headroom_never_negative_even_when_overallocated(self, manager):
        # headroom() clamps at zero if an allocation somehow exceeds budget.
        assert manager.headroom({0: 300.0, 1: 300.0}, 500.0) == 0.0
