"""Tests for the analytic kernel model."""

from __future__ import annotations

import math

import pytest

from repro.errors import WorkloadError
from repro.gpu.spec import Pipe
from repro.workloads.kernel import KernelCharacteristics, WorkloadClass


def make_kernel(**overrides) -> KernelCharacteristics:
    base = dict(
        name="toy",
        compute_time_full_s=0.8,
        memory_time_full_s=0.3,
        serial_time_s=0.02,
        pipe_fractions={Pipe.FP32: 1.0},
        l2_hit_rate=0.6,
        occupancy=0.5,
        working_set_mb=50.0,
        l2_sensitivity=0.4,
    )
    base.update(overrides)
    return KernelCharacteristics(**base)


class TestValidation:
    def test_valid_kernel(self):
        kernel = make_kernel()
        assert kernel.name == "toy"

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(name="")

    def test_negative_time_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(compute_time_full_s=-1.0)

    def test_all_zero_times_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(compute_time_full_s=0.0, memory_time_full_s=0.0, serial_time_s=0.0)

    def test_pipe_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            make_kernel(pipe_fractions={Pipe.FP32: 0.5, Pipe.FP64: 0.2})

    def test_negative_pipe_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(pipe_fractions={Pipe.FP32: 1.2, Pipe.FP64: -0.2})

    def test_out_of_range_l2_hit_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(l2_hit_rate=1.5)

    def test_out_of_range_occupancy_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(occupancy=-0.1)

    def test_nan_time_rejected(self):
        with pytest.raises(WorkloadError):
            make_kernel(memory_time_full_s=float("nan"))


class TestDerivedProperties:
    def test_reference_time_is_roofline_plus_serial(self):
        kernel = make_kernel()
        assert kernel.reference_time_s == pytest.approx(0.8 + 0.02)

    def test_reference_time_memory_bound(self):
        kernel = make_kernel(compute_time_full_s=0.1, memory_time_full_s=0.9)
        assert kernel.reference_time_s == pytest.approx(0.9 + 0.02)

    def test_cuda_and_tensor_fractions(self):
        kernel = make_kernel(pipe_fractions={Pipe.TENSOR_MIXED: 0.9, Pipe.FP32: 0.1})
        assert kernel.tensor_fraction == pytest.approx(0.9)
        assert kernel.cuda_fraction == pytest.approx(0.1)
        assert kernel.uses_tensor_cores

    def test_pure_cuda_kernel_does_not_use_tensor(self):
        assert not make_kernel().uses_tensor_cores

    def test_compute_memory_ratio(self):
        kernel = make_kernel()
        assert kernel.compute_memory_ratio == pytest.approx(0.8 / 0.3)

    def test_compute_memory_ratio_without_memory(self):
        kernel = make_kernel(memory_time_full_s=0.0)
        assert math.isinf(kernel.compute_memory_ratio)

    def test_serial_fraction(self):
        kernel = make_kernel(compute_time_full_s=0.0, memory_time_full_s=0.0, serial_time_s=1.0,
                             pipe_fractions={})
        assert kernel.serial_fraction == pytest.approx(1.0)

    def test_dominant_pipe(self):
        kernel = make_kernel(pipe_fractions={Pipe.TENSOR_INT: 0.7, Pipe.FP32: 0.3})
        assert kernel.dominant_pipe() is Pipe.TENSOR_INT


class TestTransformations:
    def test_scaled_multiplies_all_times(self):
        scaled = make_kernel().scaled(2.0)
        assert scaled.compute_time_full_s == pytest.approx(1.6)
        assert scaled.memory_time_full_s == pytest.approx(0.6)
        assert scaled.serial_time_s == pytest.approx(0.04)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(WorkloadError):
            make_kernel().scaled(0.0)

    def test_with_name(self):
        renamed = make_kernel().with_name("other")
        assert renamed.name == "other"
        assert renamed.compute_time_full_s == make_kernel().compute_time_full_s

    def test_summary_mentions_name(self):
        assert "toy" in make_kernel().summary()


class TestWorkloadClassEnum:
    def test_four_classes(self):
        assert {c.value for c in WorkloadClass} == {"TI", "CI", "MI", "US"}
