"""Tests for the co-scheduler and the job manager."""

from __future__ import annotations

import pytest

from repro.cluster.job import JobState
from repro.cluster.manager import JobManager
from repro.cluster.node import ComputeNode
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import CoScheduler, SchedulerConfig
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.errors import SchedulingError
from repro.gpu.mig import CORUN_STATES, MemoryOption
from repro.profiling.database import ProfileDatabase
from repro.core.workflow import OnlineAllocator
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture(scope="module")
def workflow():
    wf = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan(
            gpc_counts=(3, 4),
            options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
            power_caps=(230.0, 250.0),
        ),
        power_caps=(230.0, 250.0),
    )
    wf.train()
    return wf


@pytest.fixture()
def scheduler(workflow):
    config = SchedulerConfig(policy_name="problem1", power_cap_w=250.0, alpha=0.2, window_size=4)
    return CoScheduler(workflow.online, config)


@pytest.fixture()
def node(workflow):
    return ComputeNode(node_id=0, simulator=workflow.simulator)


class TestPlanning:
    def test_empty_queue_rejected(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.plan_next(JobQueue())

    def test_profiled_pair_is_co_scheduled(self, scheduler):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        plan = scheduler.plan_next(queue)
        assert len(plan.jobs) == 2
        assert plan.decision is not None
        assert plan.decision.state in CORUN_STATES

    def test_single_job_runs_alone(self, scheduler):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        plan = scheduler.plan_next(queue)
        assert len(plan.jobs) == 1
        assert plan.decision is None

    def test_unprofiled_head_triggers_profile_run(self, workflow):
        allocator = OnlineAllocator(
            workflow.model,
            database=ProfileDatabase(),
            power_caps=(230.0, 250.0),
        )
        scheduler = CoScheduler(allocator, SchedulerConfig(policy_name="problem1", power_cap_w=250.0))
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        plan = scheduler.plan_next(queue)
        assert plan.reason == "profile run"
        assert len(plan.jobs) == 1

    def test_window_limits_partner_search(self, workflow):
        config = SchedulerConfig(policy_name="problem1", power_cap_w=250.0, window_size=2)
        scheduler = CoScheduler(workflow.online, config)
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("kmeans"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        plan = scheduler.plan_next(queue)
        # With window 2 only kmeans is reachable as a partner.
        assert {job.name for job in plan.jobs} == {"igemm4", "kmeans"}

    def test_partner_choice_prefers_higher_predicted_objective(self, scheduler):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("tdgemm"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        plan = scheduler.plan_next(queue)
        # Pairing the Tensor kernel with the memory-bound kernel yields much
        # higher weighted speedup than pairing two Tensor kernels.
        assert {job.name for job in plan.jobs} == {"igemm4", "stream"}


class TestDispatch:
    def test_dispatch_pair_updates_jobs_and_node(self, scheduler, node):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        plan = scheduler.plan_next(queue)
        finish = scheduler.dispatch(plan, queue, node, time=0.0)
        assert queue.empty
        assert finish > 0
        assert node.busy_until == pytest.approx(finish)
        for job in plan.jobs:
            assert job.state is JobState.COMPLETED
            assert job.co_runner is not None
            assert job.finish_time is not None and job.finish_time <= finish + 1e-9

    def test_dispatch_respects_busy_node(self, scheduler, node):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        plan = scheduler.plan_next(queue)
        node.busy_until = 100.0
        with pytest.raises(SchedulingError):
            scheduler.dispatch(plan, queue, node, time=0.0)

    def test_dispatch_solo_job(self, scheduler, node):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("dgemm"))
        plan = scheduler.plan_next(queue)
        finish = scheduler.dispatch(plan, queue, node, time=5.0)
        job = plan.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.co_runner is None
        assert finish == pytest.approx(5.0 + job.runtime)


class TestJobManager:
    def test_coscheduled_run_completes_all_jobs(self, workflow):
        manager = JobManager.from_workflow(
            workflow,
            n_nodes=2,
            scheduler_config=SchedulerConfig(policy_name="problem1", power_cap_w=250.0, window_size=4),
        )
        kernels = [DEFAULT_SUITE.get(n) for n in ("igemm4", "stream", "srad", "needle", "hgemm", "lud")]
        report = manager.run_coscheduled(kernels)
        assert report.n_jobs == 6
        assert report.co_scheduled_jobs + report.exclusive_jobs == 6
        assert report.makespan_s > 0
        assert all(job.state is JobState.COMPLETED for job in report.jobs)

    def test_exclusive_baseline(self, workflow):
        manager = JobManager.from_workflow(workflow, n_nodes=1)
        kernels = [DEFAULT_SUITE.get(n) for n in ("igemm4", "stream")]
        report = manager.run_exclusive(kernels)
        assert report.co_scheduled_jobs == 0
        assert report.exclusive_jobs == 2
        expected = sum(workflow.simulator.reference_time(k) for k in kernels)
        assert report.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_empty_job_list_rejected(self, workflow):
        manager = JobManager.from_workflow(workflow)
        with pytest.raises(SchedulingError):
            manager.run_coscheduled([])

    def test_more_nodes_reduce_makespan(self, workflow):
        kernels = [DEFAULT_SUITE.get(n) for n in ("dgemm", "hotspot", "sgemm", "lavaMD")]
        single = JobManager.from_workflow(workflow, n_nodes=1).run_exclusive(kernels)
        double = JobManager.from_workflow(workflow, n_nodes=2).run_exclusive(kernels)
        assert double.makespan_s < single.makespan_s

    def test_report_summary_text(self, workflow):
        manager = JobManager.from_workflow(workflow, n_nodes=1)
        report = manager.run_exclusive([DEFAULT_SUITE.get("dgemm")])
        assert "makespan" in report.summary()


class TestSchedulerConfigValidation:
    def test_defaults_are_valid(self):
        config = SchedulerConfig()
        assert config.window_size == 4
        assert config.group_size == 2

    def test_rejects_bad_window_size(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SchedulerConfig(window_size=0)

    def test_rejects_bad_group_size(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SchedulerConfig(group_size=0)

    def test_rejects_unknown_policy_name(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as excinfo:
            SchedulerConfig(policy_name="problem3")
        assert "problem3" in str(excinfo.value)
        assert "problem1" in str(excinfo.value)

    def test_accepts_policy_aliases(self):
        for name in ("problem1", "throughput", "problem2", "energy-efficiency"):
            SchedulerConfig(policy_name=name)

    def test_rejects_bad_power_cap(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SchedulerConfig(power_cap_w=0.0)

    def test_rejects_bad_alpha(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SchedulerConfig(alpha=1.0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(alpha=-0.1)


class TestPlanMemoization:
    def _scheduler(self, workflow, **kwargs):
        config = SchedulerConfig(
            policy_name="problem1", power_cap_w=250.0, alpha=0.2, window_size=4
        )
        return CoScheduler(workflow.online, config, **kwargs)

    def _pair_queue(self):
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        return queue

    def test_identical_window_reuses_the_cached_plan(self, workflow):
        scheduler = self._scheduler(workflow)
        first = scheduler.plan_next(self._pair_queue())
        second_queue = self._pair_queue()
        second = scheduler.plan_next(second_queue)
        assert scheduler.stats.plans_requested == 2
        assert scheduler.stats.plans_computed == 1
        assert scheduler.stats.plan_cache_hits == 1
        # Same decision object, re-bound to the live queue's job objects.
        assert second.decision is first.decision
        assert second.reason == first.reason
        assert [job.name for job in second.jobs] == [job.name for job in first.jobs]
        assert all(job in list(second_queue) for job in second.jobs)

    def test_repeated_plan_on_unchanged_queue_is_free(self, workflow):
        scheduler = self._scheduler(workflow)
        queue = self._pair_queue()
        first = scheduler.plan_next(queue)
        second = scheduler.plan_next(queue)
        assert second.jobs == first.jobs
        assert second.decision is first.decision
        # The unchanged-queue fast path answers without touching the LRU.
        assert scheduler.stats.plans_computed == 1
        assert scheduler.plan_cache.misses == 1

    def test_queue_mutation_invalidates_the_fast_path(self, workflow):
        scheduler = self._scheduler(workflow)
        queue = self._pair_queue()
        plan = scheduler.plan_next(queue)
        for job in plan.jobs:
            queue.remove(job)
        queue.submit(DEFAULT_SUITE.get("dgemm"))
        replanned = scheduler.plan_next(queue)
        assert [job.name for job in replanned.jobs] == ["dgemm"]

    def test_cache_size_zero_recomputes_every_plan(self, workflow):
        scheduler = self._scheduler(workflow, plan_cache_size=0)
        scheduler.plan_next(self._pair_queue())
        scheduler.plan_next(self._pair_queue())
        assert scheduler.stats.plans_computed == 2
        assert scheduler.stats.plan_cache_hits == 0

    def test_invalidate_plan_cache_forces_recompute(self, workflow):
        scheduler = self._scheduler(workflow)
        queue = self._pair_queue()
        scheduler.plan_next(queue)
        scheduler.invalidate_plan_cache()
        assert len(scheduler.plan_cache) == 0
        scheduler.plan_next(queue)
        assert scheduler.stats.plans_computed == 2

    def test_negative_cache_size_rejected(self, workflow):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            self._scheduler(workflow, plan_cache_size=-1)

    def test_stats_as_dict_roundtrip(self, workflow, node):
        scheduler = self._scheduler(workflow)
        queue = self._pair_queue()
        plan = scheduler.plan_next(queue)
        scheduler.dispatch(plan, queue, node, time=0.0)
        stats = scheduler.stats.as_dict()
        assert stats == {
            "plans_requested": 1,
            "plans_computed": 1,
            "plan_cache_hits": 0,
            "dispatches": 1,
        }


class TestGroupSizeOne:
    def test_group_size_one_disables_co_location(self, workflow, node):
        """group_size=1 means one job per GPU: no pairing ever happens."""
        config = SchedulerConfig(
            policy_name="problem1", power_cap_w=250.0, group_size=1
        )
        scheduler = CoScheduler(workflow.online, config)
        queue = JobQueue()
        queue.submit(DEFAULT_SUITE.get("igemm4"))
        queue.submit(DEFAULT_SUITE.get("stream"))
        plan = scheduler.plan_next(queue)
        assert len(plan.jobs) == 1
        assert plan.decision is None
        assert "group_size=1" in plan.reason
        scheduler.dispatch(plan, queue, node, time=0.0)
        assert plan.jobs[0].co_runner is None
