"""Tests for the sweep helpers."""

from __future__ import annotations

import pytest

from repro.gpu.mig import CORUN_STATES, MemoryOption
from repro.sim.sweep import (
    corun_sweep,
    group_points_by_option,
    group_points_by_power,
    scalability_power_sweep,
    scalability_sweep,
)
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE


class TestScalabilitySweep:
    def test_covers_both_options_and_all_sizes(self, sim):
        points = scalability_sweep(sim, DEFAULT_SUITE.get("dgemm"))
        assert len(points) == 2 * 5
        assert {p.option for p in points} == {MemoryOption.PRIVATE, MemoryOption.SHARED}
        assert {p.gpcs for p in points} == {1, 2, 3, 4, 7}

    def test_points_carry_power_cap(self, sim):
        points = scalability_sweep(sim, DEFAULT_SUITE.get("dgemm"), power_cap_w=190)
        assert all(p.power_cap_w == 190 for p in points)

    def test_custom_gpc_counts(self, sim):
        points = scalability_sweep(sim, DEFAULT_SUITE.get("stream"), gpc_counts=(1, 7))
        assert {p.gpcs for p in points} == {1, 7}

    def test_group_by_option(self, sim):
        points = scalability_sweep(sim, DEFAULT_SUITE.get("stream"))
        grouped = group_points_by_option(points)
        assert set(grouped) == {MemoryOption.PRIVATE, MemoryOption.SHARED}
        for curve in grouped.values():
            assert [p.gpcs for p in curve] == sorted(p.gpcs for p in curve)


class TestPowerSweep:
    def test_covers_all_caps(self, sim):
        points = scalability_power_sweep(sim, DEFAULT_SUITE.get("hgemm"), power_caps=(150, 250))
        assert {p.power_cap_w for p in points} == {150, 250}
        assert all(p.option is MemoryOption.SHARED for p in points)

    def test_group_by_power(self, sim):
        points = scalability_power_sweep(sim, DEFAULT_SUITE.get("hgemm"), power_caps=(150, 250))
        grouped = group_points_by_power(points)
        assert set(grouped) == {150, 250}
        assert len(grouped[150]) == 5


class TestCoRunSweep:
    def test_grid_shape(self, sim):
        kernels = list(corun_pair("CI-US2").kernels())
        grid = corun_sweep(sim, kernels, power_caps=(150, 250))
        assert len(grid) == len(CORUN_STATES) * 2
        for (state_key, cap), result in grid.items():
            assert result.state.key() == state_key
            assert result.power_cap_w == cap

    def test_results_are_corun_results(self, sim):
        kernels = list(corun_pair("CI-US2").kernels())
        grid = corun_sweep(sim, kernels, states=(CORUN_STATES[0],), power_caps=(250,))
        result = next(iter(grid.values()))
        assert result.n_apps == 2
        assert result.weighted_speedup > 0
