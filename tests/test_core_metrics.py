"""Tests for the throughput / fairness / efficiency metrics."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    energy_efficiency,
    fairness,
    geometric_mean,
    is_fair,
    mean_absolute_percentage_error,
    relative_error,
    weighted_speedup,
)
from repro.errors import ConfigurationError


class TestWeightedSpeedup:
    def test_sum_of_relative_performances(self):
        assert weighted_speedup([0.6, 0.7]) == pytest.approx(1.3)

    def test_single_application(self):
        assert weighted_speedup([0.8]) == pytest.approx(0.8)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_speedup([])

    def test_above_one_means_better_than_time_sharing(self):
        assert weighted_speedup([0.55, 0.55]) > 1.0


class TestFairness:
    def test_minimum(self):
        assert fairness([0.6, 0.3, 0.9]) == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fairness([])

    def test_is_fair_strict_inequality(self):
        assert is_fair([0.5, 0.6], 0.2)
        assert not is_fair([0.2, 0.6], 0.2)


class TestEnergyEfficiency:
    def test_throughput_per_watt(self):
        assert energy_efficiency([0.6, 0.6], 200.0) == pytest.approx(1.2 / 200.0)

    def test_positive_power_required(self):
        with pytest.raises(ConfigurationError):
            energy_efficiency([0.6], 0.0)

    def test_lower_cap_raises_efficiency_for_same_throughput(self):
        assert energy_efficiency([1.0], 150.0) > energy_efficiency([1.0], 250.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity_on_constant_sequence(self):
        assert geometric_mean([1.3, 1.3, 1.3]) == pytest.approx(1.3)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_never_exceeds_max(self):
        values = [0.8, 1.1, 1.4]
        assert min(values) <= geometric_mean(values) <= max(values)


class TestErrorStatistics:
    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_relative_error_zero_measurement(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)

    def test_mape(self):
        assert mean_absolute_percentage_error([1.1, 0.9], [1.0, 1.0]) == pytest.approx(10.0)

    def test_mape_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_mape_empty(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_percentage_error([], [])
