"""End-to-end N-way co-location: simulate, allocate, and dispatch 3- and
4-application groups through the CoScheduler on the A100 and H100 specs."""

from __future__ import annotations

import pytest

from repro.cluster.job import JobState
from repro.cluster.manager import JobManager
from repro.cluster.node import ComputeNode
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import CoScheduler, SchedulerConfig
from repro.core.workflow import PaperWorkflow, TrainingPlan, power_caps_for_spec
from repro.gpu.mig import MemoryOption
from repro.gpu.spec import A100_SPEC, H100_SPEC
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.groups import CORUN_QUADS, CORUN_TRIPLES, groups_of_size
from repro.workloads.suite import DEFAULT_SUITE

#: Two caps keep the spec-wide training grid fast while still exercising the
#: power dimension of the candidate space.
_N_CAPS = 2


def _nway_workflow(spec):
    caps = power_caps_for_spec(spec)[-_N_CAPS:]
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(spec, noise=no_noise()),
        plan=TrainingPlan.for_spec(spec, power_caps=caps),
        power_caps=caps,
    )
    workflow.train()
    return workflow


@pytest.fixture(scope="module")
def a100_workflow():
    return _nway_workflow(A100_SPEC)


@pytest.fixture(scope="module")
def h100_workflow():
    return _nway_workflow(H100_SPEC)


def _workflow(request, spec_name):
    return request.getfixturevalue(f"{spec_name}_workflow")


@pytest.mark.parametrize("spec_name", ("a100", "h100"))
@pytest.mark.parametrize("group", CORUN_TRIPLES[:3] + CORUN_QUADS[:2])
class TestGroupSimulateAndAllocate:
    def test_group_is_allocated_and_simulated(self, request, spec_name, group):
        workflow = _workflow(request, spec_name)
        decision = workflow.decide_problem2(list(group.apps), alpha=0.05)
        assert decision.state.n_apps == group.n_apps
        assert len(decision.predicted_rperfs) == group.n_apps
        assert decision.predicted_fairness > 0.05
        # The chosen state is realizable and simulable on this spec.
        result = workflow.simulator.co_run(
            list(group.kernels()), decision.state, decision.power_cap_w
        )
        assert result.n_apps == group.n_apps
        assert all(r.relative_performance > 0 for r in result.per_app)


@pytest.mark.parametrize("spec_name", ("a100", "h100"))
class TestGroupCandidateSpace:
    def test_candidate_space_includes_all_three_options(self, request, spec_name):
        workflow = _workflow(request, spec_name)
        states = workflow.online.candidate_states_for(3)
        options = {state.option for state in states}
        assert options == {
            MemoryOption.PRIVATE,
            MemoryOption.SHARED,
            MemoryOption.MIXED,
        }
        spec = workflow.simulator.spec
        for state in states:
            state.validate_against(spec)

    def test_pairs_keep_the_paper_candidate_states(self, request, spec_name):
        workflow = _workflow(request, spec_name)
        # The workflow was configured without explicit pair states, so the
        # spec-derived pair enumeration applies; every state must be a pair.
        states = workflow.online.candidate_states_for(2)
        assert states and all(state.n_apps == 2 for state in states)


@pytest.mark.parametrize("spec_name", ("a100", "h100"))
@pytest.mark.parametrize("group_size", (3, 4))
class TestGroupScheduling:
    def test_scheduler_dispatches_full_group(self, request, spec_name, group_size):
        workflow = _workflow(request, spec_name)
        config = SchedulerConfig(
            window_size=group_size + 1,
            group_size=group_size,
            policy_name="problem2",
            alpha=0.0,
        )
        scheduler = CoScheduler(workflow.online, config)
        queue = JobQueue()
        names = ("igemm4", "stream", "bfs", "kmeans", "needle")[: group_size + 1]
        for name in names:
            queue.submit(DEFAULT_SUITE.get(name))
        plan = scheduler.plan_next(queue)
        assert plan.decision is not None
        assert len(plan.jobs) == group_size
        assert plan.decision.state.n_apps == group_size

        node = ComputeNode(node_id=0, spec=workflow.simulator.spec, simulator=workflow.simulator)
        finish = scheduler.dispatch(plan, queue, node, time=0.0)
        assert finish > 0
        for job in plan.jobs:
            assert job.state is JobState.COMPLETED
            assert len(job.co_runners) == group_size - 1
            assert job.co_runner == job.co_runners[0]


@pytest.mark.parametrize("spec_name", ("a100", "h100"))
class TestGroupManagerDrain:
    def test_manager_drains_queue_with_groups(self, request, spec_name):
        workflow = _workflow(request, spec_name)
        manager = JobManager.from_workflow(
            workflow,
            n_nodes=1,
            scheduler_config=SchedulerConfig(
                window_size=4, group_size=3, policy_name="problem2", alpha=0.0
            ),
        )
        kernels = [
            DEFAULT_SUITE.get(n)
            for n in ("igemm4", "stream", "bfs", "sgemm", "lud", "kmeans")
        ]
        report = manager.run_coscheduled(kernels)
        assert report.n_jobs == 6
        assert all(job.state is JobState.COMPLETED for job in report.jobs)
        # At least one dispatched group exceeded the pair limit.
        group_sizes = {len(job.co_runners) + 1 for job in report.jobs if job.co_runners}
        assert max(group_sizes, default=1) >= 3


class TestSeedPairBehaviourUnchanged:
    def test_default_config_still_schedules_pairs(self, a100_workflow):
        """group_size defaults to 2: plans are identical to the seed's."""
        scheduler = CoScheduler(a100_workflow.online, SchedulerConfig(alpha=0.0))
        queue = JobQueue()
        for name in ("igemm4", "stream", "bfs"):
            queue.submit(DEFAULT_SUITE.get(name))
        plan = scheduler.plan_next(queue)
        assert plan.decision is not None
        assert len(plan.jobs) == 2


def test_groups_of_size_helper():
    assert all(group.n_apps == 3 for group in groups_of_size(3))
    assert all(group.n_apps == 4 for group in groups_of_size(4))
    assert len(groups_of_size(2)) == 18


class TestOffGridPowerCap:
    def test_off_grid_cap_raises_catchable_error_in_decide(self, h100_workflow):
        """A Problem-1 cap outside the trained grid must raise the catchable
        InfeasibleProblemError (not NotFittedError) with an actionable
        message naming the fitted caps."""
        from repro.core.policies import Problem1Policy
        from repro.errors import InfeasibleProblemError

        with pytest.raises(InfeasibleProblemError) as excinfo:
            h100_workflow.online.decide(
                ["igemm4", "stream"], Problem1Policy(power_cap_w=230.0)
            )
        assert "fitted caps" in str(excinfo.value)

    def test_scheduler_rejects_off_grid_cap_on_first_plan(self, h100_workflow):
        """A scheduler whose Problem-1 cap the model cannot evaluate must
        fail loudly at planning time instead of silently never
        co-scheduling anything.  (Construction itself stays legal so a
        scheduler can be wired up before its model is trained.)"""
        from repro.errors import ConfigurationError

        manager = JobManager.from_workflow(
            h100_workflow,
            scheduler_config=SchedulerConfig(policy_name="problem1"),  # 230 W default
        )
        with pytest.raises(ConfigurationError) as excinfo:
            manager.run_coscheduled(
                [DEFAULT_SUITE.get(n) for n in ("igemm4", "stream")]
            )
        assert "trained grid" in str(excinfo.value)

    def test_group_size_one_skips_the_cap_check(self, h100_workflow):
        """With co-location disabled the Problem-1 cap is never used, so an
        off-grid value must not block construction."""
        manager = JobManager.from_workflow(
            h100_workflow,
            scheduler_config=SchedulerConfig(policy_name="problem1", group_size=1),
        )
        report = manager.run_coscheduled(
            [DEFAULT_SUITE.get(n) for n in ("igemm4", "stream")]
        )
        assert report.co_scheduled_jobs == 0
        assert report.exclusive_jobs == 2
