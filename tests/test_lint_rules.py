"""Rule-by-rule tests over the fixture corpus in ``tests/lint_fixtures/``.

Each rule is demonstrated twice: a true-positive fixture it must flag, and
a clean-negative fixture it must stay silent on.  The fixtures are excluded
from directory discovery, so they are always named explicitly here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import analyze_paths
from repro.lint.rules import RULES

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def findings_for(fixture: str, rule_id: str):
    """Run one rule over one fixture file; returns the findings tuple."""
    report = analyze_paths([FIXTURES / fixture], select=[rule_id])
    return report.findings


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert sorted(RULES) == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
        ]

    def test_rule_metadata_is_complete(self):
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule.title
            assert rule.rationale
            assert rule.severity.value in {"error", "warning"}


@pytest.mark.parametrize(
    "fixture, rule_id",
    [
        ("rl001_bad.py", "RL001"),
        ("rl002_bad.py", "RL002"),
        ("rl003_bad.py", "RL003"),
        ("rl004/powerbudget_bad.py", "RL004"),
        ("api/rl005_bad.py", "RL005"),
        ("rl006_bad.py", "RL006"),
    ],
)
def test_bad_fixture_fires(fixture, rule_id):
    findings = findings_for(fixture, rule_id)
    assert findings, f"{rule_id} missed its true-positive fixture {fixture}"
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize(
    "fixture, rule_id",
    [
        ("rl001_ok.py", "RL001"),
        ("rl002_ok.py", "RL002"),
        ("rl003_ok.py", "RL003"),
        ("rl004/powerbudget_ok.py", "RL004"),
        ("api/rl005_ok.py", "RL005"),
        ("rl006_ok.py", "RL006"),
    ],
)
def test_ok_fixture_stays_silent(fixture, rule_id):
    findings = findings_for(fixture, rule_id)
    assert not findings, [f.format() for f in findings]


class TestRL001IdKeyedMemos:
    def test_flags_both_store_and_lookup(self):
        findings = findings_for("rl001_bad.py", "RL001")
        assert len(findings) >= 2

    def test_accepts_live_weakref_idioms(self):
        """The repo's three weakref-guarded memos must pass the rule."""
        root = Path(__file__).resolve().parents[1] / "src" / "repro"
        for module in (
            root / "cluster" / "scheduler.py",
            root / "sim" / "engine.py",
            root / "core" / "workflow.py",
        ):
            report = analyze_paths([module], select=["RL001"])
            assert not report.findings, [f.format() for f in report.findings]


class TestRL002SetIteration:
    def test_set_comprehension_from_set_is_exempt(self):
        """A set built from a set stays order-free; only ordered sinks flag."""
        findings = findings_for("rl002_ok.py", "RL002")
        assert not findings


class TestRL004PathScoping:
    def test_rule_is_silent_outside_power_budget_modules(self):
        findings = findings_for("rl004_unscoped.py", "RL004")
        assert not findings


class TestRL005Scoping:
    def test_non_frozen_dataclass_outside_api_is_allowed(self):
        findings = findings_for("rl005_outside_api.py", "RL005")
        assert not findings

    def test_api_fixture_flags_both_patterns(self):
        messages = " ".join(
            f.message for f in findings_for("api/rl005_bad.py", "RL005")
        )
        assert "frozen" in messages
        assert "default" in messages


class TestRL006Randomness:
    def test_flags_module_numpy_and_from_import_calls(self):
        findings = findings_for("rl006_bad.py", "RL006")
        assert len(findings) >= 3
