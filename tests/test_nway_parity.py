"""Parity tests: the N-way engine must reproduce the seed's solo and pair
behaviour exactly, and the batched candidate evaluation must agree with the
scalar path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem1Policy, Problem2Policy
from repro.core.search import SearchCandidate
from repro.gpu.mig import CORUN_STATES, MemoryOption, PartitionState, S1, solo_state
from repro.workloads.pairs import CORUN_PAIRS, corun_pair
from repro.workloads.suite import DEFAULT_SUITE


class TestEngineParity:
    """Solo and pair runs are the N=1/N=2 special cases of the group engine."""

    @pytest.mark.parametrize("name", ("hgemm", "stream", "bfs", "sgemm"))
    @pytest.mark.parametrize("option", (MemoryOption.PRIVATE, MemoryOption.SHARED))
    def test_solo_run_equals_single_app_co_run(self, sim, name, option):
        kernel = DEFAULT_SUITE.get(name)
        state = solo_state(4, option)
        solo = sim.solo_run(kernel, state, 210.0)
        group = sim.co_run([kernel], state, 210.0)
        assert group.n_apps == 1
        assert group.per_app[0].noiseless_elapsed_s == solo.noiseless_elapsed_s
        assert group.per_app[0].relative_performance == solo.relative_performance
        assert group.chip_power_w == solo.chip_power_w

    def test_pair_co_run_values_are_stable(self, sim):
        """Pin the S1 pair numbers so any N-way refactor that drifts the
        two-application physics is caught immediately."""
        kernels = list(corun_pair("TI-MI2").kernels())
        result = sim.co_run(kernels, S1, 230.0)
        assert result.n_apps == 2
        # The shared pool couples both applications: both see interference.
        for run in result.per_app:
            assert 0.0 < run.relative_performance <= 1.25
        assert result.weighted_speedup > 1.0
        # Solving the same state twice is deterministic.
        again = sim.co_run(kernels, S1, 230.0)
        assert again.relative_performances == result.relative_performances
        assert again.chip_power_w == result.chip_power_w


class TestBatchedEvaluationParity:
    """The vectorized grid evaluation agrees with the scalar path."""

    @pytest.fixture(scope="class")
    def allocator(self, context):
        return ResourcePowerAllocator(context.model)

    @pytest.mark.parametrize("pair_name", ("TI-MI2", "CI-MI1", "US-US1"))
    def test_batch_matches_scalar_for_pairs(self, context, allocator, pair_name):
        counters = list(context.pair_profiles(corun_pair(pair_name)))
        policy = Problem2Policy(alpha=0.2)
        candidates = [
            SearchCandidate(state=state, power_cap_w=float(cap))
            for state in CORUN_STATES
            for cap in policy.candidate_power_caps()
        ]
        batch = allocator.evaluate_candidates_batch(counters, candidates, policy)
        for candidate, batched in zip(candidates, batch):
            scalar = allocator.evaluate_candidate(
                counters, candidate.state, candidate.power_cap_w, policy
            )
            np.testing.assert_allclose(
                batched.predicted_rperfs, scalar.predicted_rperfs, rtol=1e-12
            )
            np.testing.assert_allclose(batched.objective, scalar.objective, rtol=1e-12)
            assert batched.feasible == scalar.feasible

    def test_default_pair_solve_uses_scalar_path_bit_identically(self, context):
        """On the paper's 24-candidate grid the allocator keeps the scalar
        evaluation, so pair decisions are bit-identical to the seed."""
        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        policy = Problem1Policy(power_cap_w=230.0)
        allocator = ResourcePowerAllocator(context.model, cache_size=0)
        decision = allocator.solve(counters, policy)
        expected = max(
            (
                allocator.evaluate_candidate(counters, state, 230.0, policy)
                for state in CORUN_STATES
            ),
            key=lambda e: e.objective,
        )
        assert decision.predicted_rperfs == expected.predicted_rperfs
        assert decision.predicted_objective == expected.objective
        assert decision.state.key() == expected.state.key()

    def test_batched_and_scalar_solves_pick_the_same_decision(self, context):
        """Forcing the batched path never changes the chosen candidate."""
        policy = Problem2Policy(alpha=0.2)
        scalar_alloc = ResourcePowerAllocator(
            context.model, cache_size=0, batch_threshold=10**9
        )
        batched_alloc = ResourcePowerAllocator(
            context.model, cache_size=0, batch_threshold=0
        )
        for pair in CORUN_PAIRS:
            counters = list(context.pair_profiles(pair))
            scalar = scalar_alloc.solve(counters, policy)
            batched = batched_alloc.solve(counters, policy)
            assert scalar.state.key() == batched.state.key()
            assert scalar.power_cap_w == batched.power_cap_w
            np.testing.assert_allclose(
                scalar.predicted_objective, batched.predicted_objective, rtol=1e-12
            )


class TestDecisionCache:
    def test_repeated_solve_hits_the_cache(self, context):
        allocator = ResourcePowerAllocator(context.model, cache_size=8)
        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        policy = Problem2Policy(alpha=0.2)
        first = allocator.solve(counters, policy)
        assert allocator.cache.misses == 1 and allocator.cache.hits == 0
        second = allocator.solve(counters, policy)
        assert allocator.cache.hits == 1
        assert second is first

    def test_policy_change_misses_the_cache(self, context):
        allocator = ResourcePowerAllocator(context.model, cache_size=8)
        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        allocator.solve(counters, Problem2Policy(alpha=0.2))
        allocator.solve(counters, Problem2Policy(alpha=0.3))
        assert allocator.cache.misses == 2 and allocator.cache.hits == 0

    def test_lru_eviction(self, context):
        allocator = ResourcePowerAllocator(context.model, cache_size=2)
        policy = Problem2Policy(alpha=0.2)
        for pair_name in ("TI-MI2", "CI-MI1", "US-US1"):
            counters = list(context.pair_profiles(corun_pair(pair_name)))
            allocator.solve(counters, policy)
        assert len(allocator.cache) == 2
        # The first entry was evicted: solving it again is a miss.
        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        allocator.solve(counters, policy)
        assert allocator.cache.hits == 0

    def test_cache_disabled(self, context):
        allocator = ResourcePowerAllocator(context.model, cache_size=0)
        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        policy = Problem2Policy(alpha=0.2)
        first = allocator.solve(counters, policy)
        second = allocator.solve(counters, policy)
        assert first is not second
        assert len(allocator.cache) == 0


class TestMixedStateSemantics:
    def test_effective_options(self):
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        assert state.effective_option(0) is MemoryOption.SHARED
        assert state.effective_option(1) is MemoryOption.SHARED
        assert state.effective_option(2) is MemoryOption.PRIVATE
        assert state.groups() == ((0, 1), (2,))

    def test_non_mixed_states_keep_their_option(self):
        for state in CORUN_STATES:
            for index in range(state.n_apps):
                assert state.effective_option(index) is state.option


class TestCacheInvalidation:
    def test_refit_invalidates_decision_cache(self, context):
        """Installing new coefficients must not serve stale decisions."""
        import numpy as np

        from repro.core.model import LinearPerfModel

        model = LinearPerfModel.from_dict(context.model.to_dict())
        allocator = ResourcePowerAllocator(model, cache_size=8)
        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        policy = Problem2Policy(alpha=0.2)
        first = allocator.solve(counters, policy)
        key = model.fitted_scalability_states()[0]
        model.set_scalability_coefficients(
            key, model.scalability_coefficients(key) * 0.5
        )
        second = allocator.solve(counters, policy)
        assert second is not first  # recomputed, not the cached record
        assert allocator.cache.hits == 0


class TestInterferencePartnerSemantics:
    """Mixed states couple interference only between GI-mates."""

    @pytest.fixture(scope="class")
    def nway_model(self):
        from repro.core.workflow import PaperWorkflow, TrainingPlan
        from repro.gpu.spec import A100_SPEC
        from repro.sim.engine import PerformanceSimulator
        from repro.sim.noise import no_noise

        workflow = PaperWorkflow(
            simulator=PerformanceSimulator(noise=no_noise()),
            plan=TrainingPlan.for_spec(A100_SPEC, power_caps=(190.0, 230.0)),
            power_caps=(190.0, 230.0),
        )
        workflow.train()
        return workflow

    def test_other_gi_counters_do_not_affect_shared_group_prediction(self, nway_model):
        db = nway_model.online.database
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        base = [db.get(n).counters for n in ("igemm4", "stream", "bfs")]
        swapped_third = [db.get(n).counters for n in ("igemm4", "stream", "tdgemm")]
        pred_base = nway_model.model.predict_corun(base, state, 230.0)
        pred_swap = nway_model.model.predict_corun(swapped_third, state, 230.0)
        # Apps 0 and 1 share a GI; app 2 lives in another GI, so changing it
        # must not change their predictions.
        assert pred_base[0] == pred_swap[0]
        assert pred_base[1] == pred_swap[1]

    def test_batched_matches_scalar_for_mixed_states(self, nway_model):
        db = nway_model.online.database
        counters = [db.get(n).counters for n in ("igemm4", "stream", "bfs")]
        states = [
            PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1)),
            PartitionState((1, 2, 2), MemoryOption.MIXED, gi_groups=(0, 1, 1)),
            PartitionState((2, 2, 2), MemoryOption.SHARED),
            PartitionState((2, 2, 2), MemoryOption.PRIVATE),
        ]
        candidates = [(state, 230.0) for state in states]
        batched = nway_model.model.predict_candidates(counters, candidates)
        for row, (state, cap) in zip(batched, candidates):
            scalar = nway_model.model.predict_corun(counters, state, cap)
            np.testing.assert_allclose(row, scalar, rtol=1e-12)

    def test_training_pairs_unaffected_by_partner_semantics(self):
        # Pairs have exactly one partner under every option, so the seed
        # behaviour is untouched by construction.
        for state in CORUN_STATES:
            assert state.interference_partners(0) == (1,)
            assert state.interference_partners(1) == (0,)
