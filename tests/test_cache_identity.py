"""Aliasing regression tests for the id()-keyed memos (the RL001 fix).

CPython recycles object addresses, so an id-keyed memo can serve a dead
object's cached value to a fresh object that happens to land at the same
address.  The fixed memos store a weakref next to the value and only trust
an entry whose ref still points at *this* object; the ref's callback evicts
entries when their object dies.  These tests forge the collision
deterministically (a dead ref planted at a live object's id) rather than
hoping the allocator reuses an address.
"""

from __future__ import annotations

import dataclasses
import gc
import weakref

from repro.core.model import LinearPerfModel
from repro.core.policies import Problem1Policy
from repro.core.workflow import OnlineAllocator
from repro.profiling.database import ProfileDatabase
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.suite import DEFAULT_SUITE


def fresh_kernel(**overrides):
    """A new KernelCharacteristics instance (never the shared suite object)."""
    return dataclasses.replace(DEFAULT_SUITE.get("dgemm"), **overrides)


def dead_ref():
    """A weakref whose referent is already collected."""
    donor = fresh_kernel(name="donor")
    ref = weakref.ref(donor)
    del donor
    gc.collect()
    assert ref() is None
    return ref


class TestKernelSignatureMemo:
    def test_memo_hit_returns_cached_signature(self):
        sim = PerformanceSimulator(noise=no_noise())
        kernel = fresh_kernel()
        first = sim._kernel_signature(kernel)
        assert sim._kernel_signature(kernel) is first

    def test_stale_entry_at_recycled_address_is_not_served(self):
        sim = PerformanceSimulator(noise=no_noise())
        kernel = fresh_kernel(l2_hit_rate=0.9)
        # repro: allow[RL001] forging the unguarded stale entry under test
        sim._kernel_sig_cache[id(kernel)] = (dead_ref(), ("stale", "signature"))
        signature = sim._kernel_signature(kernel)
        assert signature != ("stale", "signature")
        assert signature[0] == kernel.name
        # The forged entry was replaced by a correctly guarded one.
        # repro: allow[RL001] inspecting the guarded entry the memo rebuilt
        ref, cached = sim._kernel_sig_cache[id(kernel)]
        assert ref() is kernel and cached == signature

    def test_dead_kernel_entry_evicts_itself(self):
        sim = PerformanceSimulator(noise=no_noise())
        kernel = fresh_kernel(name="short-lived")
        sim._kernel_signature(kernel)
        key = id(kernel)
        assert key in sim._kernel_sig_cache
        del kernel
        gc.collect()
        assert key not in sim._kernel_sig_cache


class TestPolicyKeyMemo:
    def _allocator(self):
        return OnlineAllocator(LinearPerfModel(), database=ProfileDatabase())

    def test_distinct_policies_get_distinct_keys(self):
        allocator = self._allocator()
        sharp = Problem1Policy(power_cap_w=250.0, alpha=0.1)
        lax = Problem1Policy(power_cap_w=250.0, alpha=0.4)
        assert allocator._policy_cache_key(sharp) != allocator._policy_cache_key(lax)

    def test_stale_entry_at_recycled_address_is_not_served(self):
        allocator = self._allocator()
        policy = Problem1Policy(power_cap_w=250.0, alpha=0.3)
        # repro: allow[RL001] forging the unguarded stale entry under test
        allocator._policy_keys[id(policy)] = (dead_ref(), ("stale",))
        key = allocator._policy_cache_key(policy)
        assert key != ("stale",)
        assert key[2] == 0.3
        # repro: allow[RL001] inspecting the guarded entry the memo rebuilt
        ref, cached = allocator._policy_keys[id(policy)]
        assert ref() is policy and cached == key

    def test_dead_policy_entry_evicts_itself(self):
        allocator = self._allocator()
        policy = Problem1Policy(power_cap_w=250.0, alpha=0.2)
        allocator._policy_cache_key(policy)
        key = id(policy)
        assert key in allocator._policy_keys
        del policy
        gc.collect()
        assert key not in allocator._policy_keys
