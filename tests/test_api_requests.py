"""Round-tripping and validation of the typed API request/response objects."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    CandidateEvaluationResult,
    DecisionRequest,
    DecisionResult,
    LatencyStatsResult,
    PartitionStateRow,
    SimulationRequest,
    SimulationResult,
    StatesRequest,
    StatesResult,
    decision_requests,
)
from repro.errors import ConfigurationError


class TestDecisionRequest:
    def test_defaults_and_normalization(self):
        request = DecisionRequest(apps=["igemm4", "stream"])
        assert request.apps == ("igemm4", "stream")
        assert request.policy == "problem1"
        assert request.power_cap_w is None
        assert request.group_size == 2

    def test_round_trip_through_json(self):
        request = DecisionRequest(
            apps=("igemm4", "stream", "bfs"),
            policy="problem2",
            alpha=0.1,
            spec="h100",
            model_path="/tmp/model.json",
        )
        document = json.loads(json.dumps(request.to_dict()))
        assert DecisionRequest.from_dict(document) == request

    def test_requests_are_hashable(self):
        a = DecisionRequest(apps=("igemm4", "stream"))
        b = DecisionRequest(apps=("igemm4", "stream"))
        assert a == b and hash(a) == hash(b)

    def test_empty_apps_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionRequest(apps=())

    def test_bare_string_apps_rejected(self):
        # A str is iterable, but per-character app names are never intended.
        with pytest.raises(ConfigurationError, match="bare"):
            DecisionRequest(apps="igemm4")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            DecisionRequest(apps=("stream",), policy="problem9")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="spec"):
            DecisionRequest(apps=("stream",), spec="v100")

    def test_unknown_field_rejected_by_from_dict(self):
        with pytest.raises(ConfigurationError, match="unknown field"):
            DecisionRequest.from_dict({"apps": ["stream"], "powercap": 230})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionRequest.from_dict({"policy": "problem1"})

    def test_decision_requests_fan_out(self):
        requests = decision_requests(
            [("igemm4", "stream"), ("hgemm", "bfs")], policy="problem2", alpha=0.1
        )
        assert [r.apps for r in requests] == [("igemm4", "stream"), ("hgemm", "bfs")]
        assert all(r.policy == "problem2" and r.alpha == 0.1 for r in requests)


class TestSimulationRequest:
    def test_round_trip_through_json(self):
        request = SimulationRequest(
            arrival_rate_per_s=3.0,
            duration_s=30.0,
            burst_size=4.0,
            mix="tensor-heavy",
            n_nodes=3,
            power_budget_w=600.0,
            repartition_latency_s=1.5,
        )
        document = json.loads(json.dumps(request.to_dict()))
        assert SimulationRequest.from_dict(document) == request

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="mix"):
            SimulationRequest(mix="spiky")

    def test_non_positive_burst_size_rejected(self):
        # Would otherwise escape as a ZeroDivisionError in the generator.
        with pytest.raises(ConfigurationError, match="burst_size"):
            SimulationRequest(burst_size=0.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown field"):
            SimulationRequest.from_dict({"arrival_rate": 2.0})


class TestStatesRequest:
    def test_round_trip(self):
        request = StatesRequest(n_apps=3, spec="a30")
        assert StatesRequest.from_dict(request.to_dict()) == request

    def test_zero_apps_rejected(self):
        with pytest.raises(ConfigurationError, match="n_apps"):
            StatesRequest(n_apps=0)


class TestDecisionResult:
    def _result(self) -> DecisionResult:
        evaluation = CandidateEvaluationResult(
            state="S1(4GPCs-3GPCs/Shared)",
            label="S1",
            power_cap_w=230.0,
            predicted_rperfs=(0.8, 0.44),
            throughput=1.24,
            fairness=0.28,
            objective=1.24,
            feasible=True,
        )
        return DecisionResult(
            policy="problem1-throughput",
            apps=("igemm4", "stream"),
            spec="a100",
            state="S1(4GPCs-3GPCs/Shared)",
            state_label="S1",
            power_cap_w=230.0,
            predicted_rperfs=(0.8, 0.44),
            predicted_throughput=1.24,
            predicted_fairness=0.28,
            predicted_objective=1.24,
            candidates_evaluated=4,
            evaluations=(evaluation,),
        )

    def test_round_trip_through_json(self):
        result = self._result()
        document = json.loads(json.dumps(result.to_dict()))
        assert DecisionResult.from_dict(document) == result

    def test_describe_wording(self):
        text = self._result().describe()
        assert text.startswith("[problem1-throughput] choose S1(4GPCs-3GPCs/Shared) @ 230W")
        assert "objective=1.2400" in text

    def test_display_prefers_label(self):
        evaluation = self._result().evaluations[0]
        assert evaluation.display == "S1"
        unlabeled = CandidateEvaluationResult(
            state="4GPCs-3GPCs/Private",
            label=None,
            power_cap_w=230.0,
            predicted_rperfs=(0.5, 0.5),
            throughput=1.0,
            fairness=1.0,
            objective=1.0,
            feasible=True,
        )
        assert unlabeled.display == "4GPCs-3GPCs/Private"


class TestStatesResult:
    def test_round_trip_through_json(self):
        result = StatesResult(
            spec="a100",
            spec_description="Simulated-A100-40GB",
            n_apps=2,
            states=(
                PartitionStateRow(
                    state="S1(4GPCs-3GPCs/Shared)",
                    option="shared",
                    total_gpcs=7,
                    mem_slices_per_app=(8, 8),
                ),
            ),
        )
        document = json.loads(json.dumps(result.to_dict()))
        assert StatesResult.from_dict(document) == result
        assert result.n_states == 1


class TestSimulationResult:
    def test_round_trip_through_json(self):
        stats = LatencyStatsResult(mean_s=1.0, p50_s=0.9, p95_s=2.0, p99_s=2.5, max_s=3.0)
        result = SimulationResult(
            label="trace",
            spec="a100",
            n_jobs=10,
            n_nodes=2,
            makespan_s=12.0,
            sustained_throughput_jobs_per_s=0.83,
            wait=stats,
            turnaround=stats,
            utilization=0.5,
            energy_wh=1.2,
            co_scheduled_jobs=6,
            exclusive_jobs=4,
            profile_runs=0,
            events_processed=20,
            repartitions=1,
            repartition_time_s=0.5,
            mig_instance_changes=2,
            power_rebalances=3,
            final_power_allocation_w={"0": 210.0, "1": 210.0},
            peak_queue_length=4,
            trace_summary="[trace] 10 jobs",
            report_summary="[trace] 10 jobs on 2 node(s): ...",
        )
        document = json.loads(json.dumps(result.to_dict()))
        assert SimulationResult.from_dict(document) == result

    def test_integer_allocation_keys_are_normalized(self):
        stats = LatencyStatsResult(mean_s=1.0, p50_s=1.0, p95_s=1.0, p99_s=1.0, max_s=1.0)
        base = SimulationResult(
            label="t",
            spec="a100",
            n_jobs=1,
            n_nodes=1,
            makespan_s=1.0,
            sustained_throughput_jobs_per_s=1.0,
            wait=stats,
            turnaround=stats,
            utilization=1.0,
            energy_wh=0.1,
            co_scheduled_jobs=0,
            exclusive_jobs=1,
            profile_runs=1,
            events_processed=2,
            repartitions=0,
            repartition_time_s=0.0,
            mig_instance_changes=0,
            power_rebalances=0,
            final_power_allocation_w={"0": 250.0},
            peak_queue_length=1,
            trace_summary="s",
            report_summary="r",
        )
        document = base.to_dict()
        document["final_power_allocation_w"] = {0: 250.0}
        assert SimulationResult.from_dict(document) == base
