"""Tests for the Table 4 basis functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    DEFAULT_BASIS,
    H_LABELS,
    J_LABELS,
    RAW_COUNTER_BASIS,
    basis_h,
    basis_j,
    raw_counter_basis,
)
from repro.sim.counters import CounterVector, collect_counters
from repro.workloads.suite import DEFAULT_SUITE


def counters(compute=90.0, memory=45.0, dram=30.0, l2=60.0, occ=50.0, mixed=70.0, double=0.0, integer=0.0):
    return CounterVector(compute, memory, dram, l2, occ, mixed, double, integer)


class TestBasisH:
    def test_dimension_matches_table4(self):
        assert basis_h(counters()).shape == (6,)
        assert len(H_LABELS) == 6

    def test_h2_is_tensor_intensity(self):
        h = basis_h(counters(mixed=40, double=10, integer=5))
        assert h[1] == pytest.approx(0.55)

    def test_h1_is_non_tensor_compute_intensity(self):
        h = basis_h(counters(compute=90, mixed=70))
        assert h[0] == pytest.approx(0.9 - 0.7)

    def test_h3_is_memory_compute_ratio(self):
        h = basis_h(counters(compute=90, memory=45))
        assert h[2] == pytest.approx(0.5)

    def test_h3_guard_against_zero_compute(self):
        zero_compute = CounterVector(0.0, 50, 40, 60, 50, 0, 0, 0)
        assert basis_h(zero_compute)[2] == 0.0

    def test_h4_h5_are_scaled_counters(self):
        h = basis_h(counters(l2=60, occ=50))
        assert h[3] == pytest.approx(0.6)
        assert h[4] == pytest.approx(0.5)

    def test_h6_is_constant(self):
        assert basis_h(counters())[5] == 1.0


class TestBasisJ:
    def test_dimension_matches_table4(self):
        assert basis_j(counters()).shape == (3,)
        assert len(J_LABELS) == 3

    def test_components(self):
        j = basis_j(counters(dram=30, l2=60))
        assert j[0] == pytest.approx(0.3)
        assert j[1] == pytest.approx(0.6)
        assert j[2] == 1.0


class TestRawBasis:
    def test_dimension(self):
        assert raw_counter_basis(counters()).shape == (9,)
        assert RAW_COUNTER_BASIS.h_dim == 9

    def test_constant_term_last(self):
        assert raw_counter_basis(counters())[-1] == 1.0


class TestBasisFunctionsContainer:
    def test_default_basis_dims(self):
        assert DEFAULT_BASIS.h_dim == 6
        assert DEFAULT_BASIS.j_dim == 3
        assert DEFAULT_BASIS.name == "table4"

    def test_h_matrix_stacks_rows(self):
        profiles = [collect_counters(DEFAULT_SUITE.get(n)) for n in ("dgemm", "stream", "hgemm")]
        matrix = DEFAULT_BASIS.h_matrix(profiles)
        assert matrix.shape == (3, 6)
        assert np.allclose(matrix[0], basis_h(profiles[0]))

    def test_j_matrix_stacks_rows(self):
        profiles = [collect_counters(DEFAULT_SUITE.get(n)) for n in ("dgemm", "stream")]
        matrix = DEFAULT_BASIS.j_matrix(profiles)
        assert matrix.shape == (2, 3)

    def test_empty_matrix(self):
        assert DEFAULT_BASIS.h_matrix([]).shape == (0, 6)
        assert DEFAULT_BASIS.j_matrix([]).shape == (0, 3)

    def test_basis_separates_the_classes(self):
        """The hand-designed features should clearly separate TI/CI/MI kernels."""
        hgemm = basis_h(collect_counters(DEFAULT_SUITE.get("hgemm")))
        dgemm = basis_h(collect_counters(DEFAULT_SUITE.get("dgemm")))
        stream = basis_h(collect_counters(DEFAULT_SUITE.get("stream")))
        assert hgemm[1] > 0.5 and dgemm[1] == 0.0          # tensor intensity
        assert stream[2] > 3 * dgemm[2]                     # memory/compute ratio
