"""Tests for the chip power model and the power-cap governor."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.power import InstanceLoad, PowerModel
from repro.gpu.spec import A100_SPEC


@pytest.fixture()
def power_model():
    return PowerModel(A100_SPEC)


def full_tensor_load(n_gpcs: int = 8) -> InstanceLoad:
    return InstanceLoad(
        n_gpcs=n_gpcs, cuda_utilization=0.1, tensor_utilization=0.95, dram_bw_fraction=0.2
    )


def memory_load(n_gpcs: int = 8) -> InstanceLoad:
    return InstanceLoad(
        n_gpcs=n_gpcs, cuda_utilization=0.15, tensor_utilization=0.0, dram_bw_fraction=0.95
    )


class TestInstanceLoad:
    def test_valid_load(self):
        load = InstanceLoad(4, 0.5, 0.0, 0.3)
        assert load.n_gpcs == 4

    def test_rejects_zero_gpcs(self):
        with pytest.raises(ConfigurationError):
            InstanceLoad(0, 0.5, 0.0, 0.3)

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(ConfigurationError):
            InstanceLoad(4, 1.5, 0.0, 0.3)
        with pytest.raises(ConfigurationError):
            InstanceLoad(4, 0.5, -0.2, 0.3)


class TestBreakdown:
    def test_idle_power_is_positive_but_modest(self, power_model):
        idle = power_model.idle_power()
        assert 0 < idle < 150

    def test_total_is_sum_of_components(self, power_model):
        breakdown = power_model.breakdown([full_tensor_load()], 1.0)
        assert breakdown.total_w == pytest.approx(
            breakdown.static_w
            + breakdown.gpc_idle_w
            + breakdown.gpc_dynamic_w
            + breakdown.hbm_idle_w
            + breakdown.hbm_dynamic_w
        )

    def test_tensor_load_draws_more_than_memory_load(self, power_model):
        tensor = power_model.total_power([full_tensor_load()], 1.0)
        memory = power_model.total_power([memory_load()], 1.0)
        assert tensor > memory

    def test_power_increases_with_frequency(self, power_model):
        low = power_model.total_power([full_tensor_load()], 0.5)
        high = power_model.total_power([full_tensor_load()], 1.0)
        assert high > low

    def test_power_increases_with_gpcs(self, power_model):
        small = power_model.total_power([full_tensor_load(2)], 1.0)
        large = power_model.total_power([full_tensor_load(7)], 1.0)
        assert large > small

    def test_multi_instance_loads_accumulate(self, power_model):
        single = power_model.total_power([full_tensor_load(4)], 1.0)
        both = power_model.total_power([full_tensor_load(4), memory_load(3)], 1.0)
        assert both > single

    def test_rejects_more_busy_than_powered_gpcs(self, power_model):
        with pytest.raises(ConfigurationError):
            power_model.breakdown([full_tensor_load(8)], 1.0, powered_gpcs=7)

    def test_rejects_invalid_powered_gpcs(self, power_model):
        with pytest.raises(ConfigurationError):
            power_model.breakdown([], 1.0, powered_gpcs=0)

    def test_full_tensor_chip_exceeds_default_limit(self, power_model):
        """A fully-lit Tensor-Core workload must be power-limited at 250 W."""
        assert power_model.total_power([full_tensor_load()], 1.0) > A100_SPEC.default_power_limit_w


class TestGovernor:
    def test_high_cap_allows_full_clock(self, power_model):
        f = power_model.max_frequency_under_cap(
            lambda _: [memory_load()], A100_SPEC.max_power_cap_w
        )
        assert f == pytest.approx(1.0)

    def test_low_cap_throttles_tensor_load(self, power_model):
        f = power_model.max_frequency_under_cap(lambda _: [full_tensor_load()], 150.0)
        assert f < 0.9

    def test_memory_load_not_throttled_at_150w(self, power_model):
        f = power_model.max_frequency_under_cap(lambda _: [memory_load()], 150.0)
        assert f > 0.9

    def test_selected_frequency_honours_cap(self, power_model):
        cap = 170.0
        loads = [full_tensor_load()]
        f = power_model.max_frequency_under_cap(lambda _: loads, cap)
        assert power_model.total_power(loads, f) <= cap + 1e-6

    def test_lower_cap_means_lower_frequency(self, power_model):
        f150 = power_model.max_frequency_under_cap(lambda _: [full_tensor_load()], 150.0)
        f250 = power_model.max_frequency_under_cap(lambda _: [full_tensor_load()], 250.0)
        assert f150 < f250

    def test_governor_never_goes_below_min_clock(self, power_model):
        heavy = [full_tensor_load()]
        f = power_model.max_frequency_under_cap(lambda _: heavy, A100_SPEC.min_power_cap_w)
        assert f >= A100_SPEC.min_relative_frequency - 1e-9

    def test_governor_validates_cap(self, power_model):
        from repro.errors import PowerCapError

        with pytest.raises(PowerCapError):
            power_model.max_frequency_under_cap(lambda _: [memory_load()], 10.0)
