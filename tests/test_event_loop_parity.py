"""Bit-exactness pins for the optimized event loop.

The fleet-scale event-loop work (incremental free-node heap, dispatch-plan
memoization, vectorized power distribution, bulk heapify) is a pure
performance change: on a seeded trace every :class:`SimulationReport`
metric must be identical to the straightforward loop it replaced.  The
fingerprints below were captured from the pre-optimization event loop
(per-batch O(nodes) scans, no plan cache, scalar power distribution) on
this exact set of configurations; any drift here means an optimization
changed scheduling behaviour, not just its cost.

Integers are compared exactly.  Floats get a 1e-12 relative tolerance:
the optimized arithmetic is kept operation-for-operation identical (the
vectorized power split sums with ``float(sum(array.tolist()))`` exactly
because ``np.sum`` pairwise accumulation would drift), so in practice the
match is bit-exact, but the tolerance keeps the pins portable across
libm builds.
"""

from __future__ import annotations

import pytest

from repro.cluster.events import ClusterSimulator, SimulationConfig
from repro.cluster.scheduler import SchedulerConfig
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.gpu.mig import MemoryOption
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.traces import bursty_trace, poisson_trace

_PLAN = TrainingPlan(
    gpc_counts=(3, 4),
    options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
    power_caps=(230.0, 250.0),
)
_CAPS = (230.0, 250.0)


@pytest.fixture(scope="module")
def workflow():
    """A small noise-free workflow (exact, repeatable numbers)."""
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=_PLAN,
        power_caps=_CAPS,
    )
    workflow.train()
    return workflow


@pytest.fixture(scope="module")
def noisy_workflow():
    """The same small workflow with the default (seeded) noise model."""
    workflow = PaperWorkflow(plan=_PLAN, power_caps=_CAPS)
    workflow.train()
    return workflow


@pytest.fixture(scope="module")
def trace():
    """The seeded arrival trace shared by most pinned configurations."""
    return poisson_trace(3.0, n_jobs=120, seed=7)


def fingerprint(report):
    """The pinned metric fingerprint of one simulation report."""
    return {
        "makespan_s": report.makespan_s,
        "throughput": report.sustained_throughput_jobs_per_s,
        "wait_mean_s": report.wait.mean_s,
        "wait_p50_s": report.wait.p50_s,
        "wait_p95_s": report.wait.p95_s,
        "wait_p99_s": report.wait.p99_s,
        "wait_max_s": report.wait.max_s,
        "turnaround_mean_s": report.turnaround.mean_s,
        "turnaround_p50_s": report.turnaround.p50_s,
        "turnaround_p95_s": report.turnaround.p95_s,
        "turnaround_p99_s": report.turnaround.p99_s,
        "turnaround_max_s": report.turnaround.max_s,
        "utilization": report.utilization,
        "energy_wh": report.energy_wh,
        "co_scheduled_jobs": report.co_scheduled_jobs,
        "exclusive_jobs": report.exclusive_jobs,
        "profile_runs": report.profile_runs,
        "events_processed": report.events_processed,
        "repartitions": report.repartitions,
        "repartition_time_s": report.repartition_time_s,
        "mig_instance_changes": report.mig_instance_changes,
        "power_rebalances": report.power_rebalances,
        "final_power_allocation_w": {
            str(node_id): share
            for node_id, share in sorted(report.final_power_allocation_w.items())
        },
        "peak_queue_length": report.peak_queue_length,
        "start_sum_s": sum(job.start_time for job in report.jobs),
        "finish_sum_s": sum(job.finish_time for job in report.jobs),
    }


def assert_matches_pin(report, name):
    """Compare a report against its pinned fingerprint field by field."""
    actual = fingerprint(report)
    pinned = PINS[name]
    assert actual.keys() == pinned.keys()
    for key, expected in pinned.items():
        value = actual[key]
        if isinstance(expected, float):
            assert value == pytest.approx(expected, rel=1e-12), key
        elif isinstance(expected, dict):
            assert value.keys() == expected.keys(), key
            for node_id, share in expected.items():
                assert value[node_id] == pytest.approx(share, rel=1e-12), (key, node_id)
        else:
            assert value == expected, key


PINS = {
    "plain_problem1": {
        "makespan_s": 38.10342237487917,
        "throughput": 3.149323407734461,
        "wait_mean_s": 0.19059139998624897,
        "wait_p50_s": 0.0,
        "wait_p95_s": 0.8085171295814321,
        "wait_p99_s": 1.2196106242455833,
        "wait_max_s": 1.2995706213571232,
        "turnaround_mean_s": 1.3364053074850497,
        "turnaround_p50_s": 0.9395499214448582,
        "turnaround_p95_s": 2.895990695741009,
        "turnaround_p99_s": 3.0074537570106257,
        "turnaround_max_s": 3.091608486382764,
        "utilization": 0.7179402473503752,
        "energy_wh": 5.533087481845031,
        "co_scheduled_jobs": 46,
        "exclusive_jobs": 74,
        "profile_runs": 0,
        "events_processed": 217,
        "repartitions": 0,
        "repartition_time_s": 0.0,
        "mig_instance_changes": 0,
        "power_rebalances": 0,
        "final_power_allocation_w": {},
        "peak_queue_length": 6,
        "start_sum_s": 2087.663930069837,
        "finish_sum_s": 2225.161598969692,
    },
    "budget_latency": {
        "makespan_s": 78.13252850625739,
        "throughput": 1.5358519978063885,
        "wait_mean_s": 24.88744555589501,
        "wait_p50_s": 25.978220468475335,
        "wait_p95_s": 40.411427285895954,
        "wait_p99_s": 43.04033114259141,
        "wait_max_s": 43.94444672036923,
        "turnaround_mean_s": 26.532787264373788,
        "turnaround_p50_s": 27.75978797808344,
        "turnaround_p95_s": 42.577927253872204,
        "turnaround_p99_s": 44.892697042916886,
        "turnaround_max_s": 45.67444672036923,
        "utilization": 0.3889619764486946,
        "energy_wh": 6.120008524190204,
        "co_scheduled_jobs": 116,
        "exclusive_jobs": 4,
        "profile_runs": 0,
        "events_processed": 398,
        "repartitions": 34,
        "repartition_time_s": 186.0,
        "mig_instance_changes": 93,
        "power_rebalances": 182,
        "final_power_allocation_w": {
            "0": 175.0,
            "1": 175.0,
            "2": 175.0,
            "3": 175.0,
        },
        "peak_queue_length": 68,
        "start_sum_s": 5051.286428778888,
        "finish_sum_s": 5248.72743379634,
    },
    "problem2_groups": {
        "makespan_s": 45.75705244227768,
        "throughput": 1.7483643663655923,
        "wait_mean_s": 1.5965682530942849,
        "wait_p50_s": 1.050459735934366,
        "wait_p95_s": 4.8689916167987874,
        "wait_p99_s": 5.918639591043892,
        "wait_max_s": 5.99152444581452,
        "turnaround_mean_s": 3.113984722189076,
        "turnaround_p50_s": 2.780825802583387,
        "turnaround_p95_s": 6.651467588573148,
        "turnaround_p99_s": 7.979056041447956,
        "turnaround_max_s": 8.28134913331452,
        "utilization": 0.8629953033533844,
        "energy_wh": 4.210884419898087,
        "co_scheduled_jobs": 58,
        "exclusive_jobs": 22,
        "profile_runs": 0,
        "events_processed": 131,
        "repartitions": 0,
        "repartition_time_s": 0.0,
        "mig_instance_changes": 0,
        "power_rebalances": 0,
        "final_power_allocation_w": {},
        "peak_queue_length": 10,
        "start_sum_s": 1882.3008088278905,
        "finish_sum_s": 2003.6941263554743,
    },
    "bursty_budget": {
        "makespan_s": 41.47051849417269,
        "throughput": 1.44681094374142,
        "wait_mean_s": 0.9788615566047708,
        "wait_p50_s": 0.0,
        "wait_p95_s": 3.6270284204410355,
        "wait_p99_s": 3.8908187289803844,
        "wait_max_s": 4.089367088607595,
        "turnaround_mean_s": 2.724771021785283,
        "turnaround_p50_s": 2.4322994494095305,
        "turnaround_p95_s": 5.850333464102753,
        "turnaround_p99_s": 6.186517518886337,
        "turnaround_max_s": 6.305730965813295,
        "utilization": 0.5295607821606265,
        "energy_wh": 2.8454711542343323,
        "co_scheduled_jobs": 54,
        "exclusive_jobs": 6,
        "profile_runs": 0,
        "events_processed": 140,
        "repartitions": 0,
        "repartition_time_s": 0.0,
        "mig_instance_changes": 0,
        "power_rebalances": 47,
        "final_power_allocation_w": {
            "0": 140.0,
            "1": 140.0,
            "2": 140.0,
        },
        "peak_queue_length": 15,
        "start_sum_s": 1129.0386313198446,
        "finish_sum_s": 1233.793199230675,
    },
    "noisy_problem1": {
        "makespan_s": 57.48299663774525,
        "throughput": 2.0875738395517813,
        "wait_mean_s": 10.057738029294667,
        "wait_p50_s": 10.984275410548456,
        "wait_p95_s": 17.500378939216226,
        "wait_p99_s": 19.394470629684633,
        "wait_max_s": 19.83401727578846,
        "turnaround_mean_s": 11.64459725658627,
        "turnaround_p50_s": 12.328635935303865,
        "turnaround_p95_s": 19.223556707029907,
        "turnaround_p99_s": 20.58315332175926,
        "turnaround_max_s": 21.606009746074754,
        "utilization": 0.5075547500492752,
        "energy_wh": 6.154836271809397,
        "co_scheduled_jobs": 114,
        "exclusive_jobs": 6,
        "profile_runs": 0,
        "events_processed": 220,
        "repartitions": 37,
        "repartition_time_s": 101.0,
        "mig_instance_changes": 101,
        "power_rebalances": 0,
        "final_power_allocation_w": {},
        "peak_queue_length": 36,
        "start_sum_s": 3271.7215255868487,
        "finish_sum_s": 3462.14463286184,
    },
}

def test_plain_problem1_matches_pin(workflow, trace):
    report = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=4,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=230.0, window_size=4
        ),
    ).run(trace)
    assert_matches_pin(report, "plain_problem1")


def test_power_budget_and_repartition_latency_match_pin(workflow, trace):
    spec = workflow.simulator.spec
    report = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=4,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=230.0, window_size=4
        ),
        config=SimulationConfig(
            repartition_latency_s=2.0,
            power_budget_w=4 * spec.min_power_cap_w + 300.0,
        ),
    ).run(trace)
    assert_matches_pin(report, "budget_latency")


def test_problem2_nway_groups_match_pin(workflow):
    report = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=2,
        scheduler_config=SchedulerConfig(
            policy_name="problem2", window_size=6, group_size=3
        ),
    ).run(poisson_trace(2.0, n_jobs=80, seed=11))
    assert_matches_pin(report, "problem2_groups")


def test_bursty_arrivals_with_budget_match_pin(workflow):
    spec = workflow.simulator.spec
    report = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=3,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=250.0, window_size=4
        ),
        config=SimulationConfig(power_budget_w=3 * spec.min_power_cap_w + 120.0),
    ).run(bursty_trace(0.5, mean_burst_size=4.0, duration_s=120.0, n_jobs=60, seed=3))
    assert_matches_pin(report, "bursty_budget")


def test_noisy_model_matches_pin(noisy_workflow, trace):
    report = ClusterSimulator.from_workflow(
        noisy_workflow,
        n_nodes=4,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=230.0, window_size=4
        ),
        config=SimulationConfig(repartition_latency_s=1.0),
    ).run(trace)
    assert_matches_pin(report, "noisy_problem1")
