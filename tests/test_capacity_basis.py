"""Capacity-aware saturating interference basis (key schema v3).

The 1-GPC/2-slice GPU Instance's quarter-capacity pool saturates so hard
that the linear-in-``J`` interference fit underfit it (~29 % mean RPerf
error on the mixed evaluation grid vs ~16 % for 4-slice GIs).  Key schema
v3 extends the interference basis of *sub-chip shared* keys with
capacity-aware terms — the victim's ``H`` block scaled by the pool's
servable fraction plus saturating/excess pool terms — fitted jointly with
a relative (1/RPerf) weighting.  These tests lock the contracts:

* **Accuracy** — 2-slice mean RPerf error is within the 15 % acceptance
  bound and 4-slice is no worse than the seed, on the training-suite
  mixed evaluation grid (:func:`model_error_by_gi_size`).
* **Parity** — full-chip shared and private predictions are bit-identical
  to main (pinned values captured immediately before the basis change),
  and the scalar and batched paths agree on tiny-pool mixed states.
* **Robustness** — the victim-side interference scale is clamped into
  ``[0, 1]`` on both paths, the gather memo evicts least-recently-used
  grids instead of clearing wholesale, and the error summaries raise
  :class:`~repro.errors.AnalysisError` on empty inputs instead of a bare
  ``ZeroDivisionError``.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.analysis.errors import (
    FOUR_SLICE_MEAN_ERROR_BOUND_PCT,
    FULL_CHIP_MEAN_ERROR_BOUND_PCT,
    TWO_SLICE_MEAN_ERROR_BOUND_PCT,
    model_error_by_gi_size,
    model_error_summary,
)
from repro.core.features import (
    DEFAULT_BASIS,
    POOL_TERM_DIM,
    dram_demand,
    pool_saturation_terms,
    servable_fraction,
)
from repro.core.model import KEY_SCHEMA_VERSION, HardwareStateKey, LinearPerfModel
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.errors import AnalysisError, ModelError
from repro.gpu.mig import MemoryOption, PartitionState, enumerate_partition_states
from repro.gpu.spec import A100_SPEC
from repro.sim.counters import CounterVector
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.suite import DEFAULT_SUITE

#: Full-chip predictions pinned as exact float reprs (compared with
#: repr() so a single ULP of drift fails loudly).  The ``private3`` and
#: ``mixed_lone_private`` entries were captured on main immediately
#: before the capacity-aware basis change and must never move; the
#: ``shared3`` entries were re-captured when the N≥3 full-chip
#: composition correction landed (``ModelTrainer.fit_composition`` —
#: the capacity-aware basis applied at ``q = 1``), which deliberately
#: moved three-way shared predictions while leaving every pair
#: prediction bit-identical.  The ``mixed_lone_private`` entries pin the
#: third application of a mixed state — alone in its GI, it carries a
#: plain private key whose prediction must not move even though its
#: GI-mates' sub-chip keys did.
PINNED_FULL_CHIP = {
    "shared3|stream+randomaccess+hgemm|190": [
        "0.6655712708817562",
        "0.7222914737488605",
        "0.15617781376705098",
    ],
    "shared3|stream+randomaccess+hgemm|230": [
        "0.6774522122747438",
        "0.7263146441812032",
        "0.16837731752316015",
    ],
    "shared3|dgemm+lud+bfs|190": [
        "0.23584692065595048",
        "0.3662798576533644",
        "0.7305264431674333",
    ],
    "shared3|dgemm+lud+bfs|230": [
        "0.2441875011706264",
        "0.35844804479738873",
        "0.7286294767086166",
    ],
    "private3|stream+randomaccess+hgemm|190": [
        "0.19669328604193434",
        "0.17786373233895092",
        "0.36200352685741016",
    ],
    "private3|stream+randomaccess+hgemm|230": [
        "0.19712078670988561",
        "0.17823553547996193",
        "0.3591825566204472",
    ],
    "mixed_lone_private|stream+randomaccess+hgemm|190": "0.36200352685741016",
    "mixed_lone_private|stream+randomaccess+hgemm|230": "0.3591825566204472",
}

NWAY_CAPS = (190.0, 230.0)

#: Seed (pre-v3) mean RPerf error of the 2-slice bucket on the mixed
#: evaluation grid, measured on main immediately before this change; the
#: acceptance criteria are "2-slice <= 15 %" (the shared
#: ``TWO_SLICE_MEAN_ERROR_BOUND_PCT``), "4-slice no worse than seed"
#: (``FOUR_SLICE_MEAN_ERROR_BOUND_PCT`` pins the seed level), and
#: "full-chip no worse than the pair-era additive composition"
#: (``FULL_CHIP_MEAN_ERROR_BOUND_PCT``).  The bounds themselves live in
#: :mod:`repro.analysis.errors` so the CI gate cannot drift from them.
SEED_2SLICE_MEAN_PCT = 28.8


@pytest.fixture(scope="module")
def nway_workflow():
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan.for_spec(A100_SPEC, power_caps=NWAY_CAPS),
        power_caps=NWAY_CAPS,
    )
    workflow.train()
    return workflow


def _counters(workflow, names):
    db = workflow.online.database
    return [db.get(name).counters for name in names]


def _tiny_pool_states():
    """Mixed three-application states containing a 2-slice shared GI."""
    states = []
    for state in enumerate_partition_states(3, A100_SPEC, (MemoryOption.MIXED,)):
        slices = [state.mem_slices_for(i, A100_SPEC) for i in range(state.n_apps)]
        if any(
            s == 2 and state.effective_option(i) is MemoryOption.SHARED
            for i, s in enumerate(slices)
        ):
            states.append(state)
    return states


# ----------------------------------------------------------------------
# Accuracy: the 2-slice underfit is closed, 4-slice does not regress
# ----------------------------------------------------------------------
class TestPerGISizeAccuracy:
    def test_tiny_pool_bound_and_no_4slice_regression(self, nway_workflow):
        summaries = {
            s.mem_slices: s
            for s in model_error_by_gi_size(
                nway_workflow.model, nway_workflow.simulator, NWAY_CAPS
            )
        }
        assert set(summaries) >= {2, 4, A100_SPEC.n_mem_slices}
        two = summaries[2]
        four = summaries[4]
        assert two.n_samples > 100 and four.n_samples > 100
        assert two.mean_error_pct <= TWO_SLICE_MEAN_ERROR_BOUND_PCT, (
            f"2-slice mean error {two.mean_error_pct:.1f}% exceeds the "
            f"{TWO_SLICE_MEAN_ERROR_BOUND_PCT}% acceptance bound (seed was "
            f"{SEED_2SLICE_MEAN_PCT}%)"
        )
        assert four.mean_error_pct <= FOUR_SLICE_MEAN_ERROR_BOUND_PCT, (
            f"4-slice mean error {four.mean_error_pct:.1f}% is worse than "
            f"the seed's {FOUR_SLICE_MEAN_ERROR_BOUND_PCT}%"
        )
        full_chip = summaries[A100_SPEC.n_mem_slices]
        assert full_chip.mean_error_pct <= FULL_CHIP_MEAN_ERROR_BOUND_PCT, (
            f"full-chip shared mean error {full_chip.mean_error_pct:.1f}% "
            f"regressed past the pair-era {FULL_CHIP_MEAN_ERROR_BOUND_PCT}% level"
        )

    def test_summaries_sorted_and_positive(self, nway_workflow):
        summaries = model_error_by_gi_size(
            nway_workflow.model, nway_workflow.simulator, NWAY_CAPS
        )
        slices = [s.mem_slices for s in summaries]
        assert slices == sorted(slices)
        for summary in summaries:
            assert summary.max_error_pct >= summary.mean_error_pct >= 0.0

    def test_sub_chip_coefficients_carry_capacity_terms(self, nway_workflow):
        model = nway_workflow.model
        sub_chip = HardwareStateKey(1, 2, MemoryOption.SHARED, 230.0)
        full_chip = HardwareStateKey(
            2, A100_SPEC.n_mem_slices, MemoryOption.SHARED, 230.0
        )
        expected = DEFAULT_BASIS.j_dim + DEFAULT_BASIS.h_dim + POOL_TERM_DIM
        assert model.interference_dim(sub_chip) == expected
        assert model.interference_coefficients(sub_chip).shape == (expected,)
        assert model.interference_coefficients(full_chip).shape == (
            DEFAULT_BASIS.j_dim,
        )


# ----------------------------------------------------------------------
# Parity: full-chip shared / private keys are bit-identical to main
# ----------------------------------------------------------------------
class TestFullChipParity:
    def test_pinned_predictions_bit_identical(self, nway_workflow):
        model = nway_workflow.model
        states = {
            "shared3": PartitionState((2, 2, 3), MemoryOption.SHARED),
            "private3": PartitionState((2, 2, 3), MemoryOption.PRIVATE),
            "mixed_lone_private": PartitionState(
                (2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1)
            ),
        }
        for entry, expected in PINNED_FULL_CHIP.items():
            kind, apps, cap = entry.split("|")
            counters = _counters(nway_workflow, apps.split("+"))
            predicted = model.predict_corun(counters, states[kind], float(cap))
            if kind == "mixed_lone_private":
                assert repr(predicted[2]) == expected, entry
            else:
                assert [repr(v) for v in predicted] == expected, entry

    def test_scalar_vs_batched_on_tiny_pool_states(self, nway_workflow):
        model = nway_workflow.model
        counters = _counters(nway_workflow, ["stream", "randomaccess", "hgemm"])
        states = _tiny_pool_states()
        assert states, "expected at least one 2-slice mixed layout on the A100"
        candidates = [(state, cap) for state in states for cap in NWAY_CAPS]
        batched = model.predict_candidates(counters, candidates)
        for row, (state, cap) in zip(batched, candidates):
            scalar = model.predict_corun(counters, state, cap)
            np.testing.assert_allclose(row, scalar, rtol=1e-12)

    def test_document_version_is_v3(self, nway_workflow):
        assert nway_workflow.model.to_dict()["version"] == KEY_SCHEMA_VERSION == 3

    def test_v2_document_rejected_with_retrain_hint(self, nway_workflow):
        data = nway_workflow.model.to_dict()
        data["version"] = 2
        with pytest.raises(ModelError, match="retrain"):
            LinearPerfModel.from_dict(data)


# ----------------------------------------------------------------------
# Victim-side interference scale is clamped into [0, 1]
# ----------------------------------------------------------------------
def _overdriven_counters(base: CounterVector, dram_pct: float) -> CounterVector:
    """A counter vector with an out-of-spec DRAM reading.

    ``CounterVector`` validates its fields, so an over-100 reading — the
    kind a raw telemetry feed could produce — is injected past the
    constructor, exactly as a buggy producer would hand it over.
    """
    doctored = copy.copy(base)
    object.__setattr__(doctored, "dram_throughput", dram_pct)
    return doctored


class TestInterferenceScaleClamp:
    def test_over_100_dram_counter_does_not_amplify(self, nway_workflow):
        model = nway_workflow.model
        key = HardwareStateKey(1, 2, MemoryOption.SHARED, 230.0)
        base = nway_workflow.online.database.get("stream").counters
        overdriven = _overdriven_counters(base, 130.0)
        assert overdriven.dram_throughput / 100.0 > 1.0
        assert model.interference_scale(key, overdriven) == 1.0

    def test_negative_reading_clamped_to_zero(self, nway_workflow):
        model = nway_workflow.model
        key = HardwareStateKey(1, 2, MemoryOption.SHARED, 230.0)
        base = nway_workflow.online.database.get("hgemm").counters
        assert model.interference_scale(key, _overdriven_counters(base, -5.0)) == 0.0

    def test_full_chip_scale_stays_one(self, nway_workflow):
        model = nway_workflow.model
        key = HardwareStateKey(2, A100_SPEC.n_mem_slices, MemoryOption.SHARED, 230.0)
        base = nway_workflow.online.database.get("stream").counters
        assert model.interference_scale(key, _overdriven_counters(base, 130.0)) == 1.0

    def test_batched_path_applies_the_same_clamp(self, nway_workflow):
        """Scalar and batched predictions agree even with an over-100 DRAM
        counter — i.e. the clamp is applied on both paths."""
        model = nway_workflow.model
        counters = _counters(nway_workflow, ["stream", "lud", "hgemm"])
        counters[0] = _overdriven_counters(counters[0], 130.0)
        candidates = [
            (state, cap) for state in _tiny_pool_states() for cap in NWAY_CAPS
        ]
        batched = model.predict_candidates(counters, candidates)
        for row, (state, cap) in zip(batched, candidates):
            scalar = model.predict_corun(counters, state, cap)
            np.testing.assert_allclose(row, scalar, rtol=1e-12)


# ----------------------------------------------------------------------
# Gather memo: least-recently-used eviction keeps hot grids resident
# ----------------------------------------------------------------------
class TestGatherCacheEviction:
    def _pair_grids(self, count):
        """Distinct single-candidate pair grids (distinct memo keys)."""
        states = list(
            enumerate_partition_states(
                2, A100_SPEC, (MemoryOption.SHARED, MemoryOption.PRIVATE)
            )
        )
        grids = []
        for index in range(count):
            state = states[index % len(states)]
            cap = NWAY_CAPS[(index // len(states)) % len(NWAY_CAPS)]
            grids.append([(state, cap)])
        return grids

    def test_alternating_hot_grids_never_regather(self, nway_workflow):
        model = nway_workflow.model
        counters = _counters(nway_workflow, ["stream", "hgemm"])
        capacity = LinearPerfModel._GATHER_CACHE_SIZE
        grids = self._pair_grids(capacity + 4)
        hot_a, hot_b, cold = grids[0], grids[1], grids[2:]
        model.predict_candidates(counters, hot_a)
        model.predict_candidates(counters, hot_b)
        warm = model.gather_cache_builds
        # A scheduling loop alternating two grids while unrelated one-off
        # grids churn through (enough to overflow the memo several times):
        # the hot grids' recency is refreshed on every hit, so only the
        # one-off grids are ever (re)built.
        for grid in cold * 2:
            model.predict_candidates(counters, grid)
            model.predict_candidates(counters, hot_a)
            model.predict_candidates(counters, hot_b)
        assert model.gather_cache_builds == warm + 2 * len(cold)

    def test_memo_stays_bounded(self, nway_workflow):
        model = nway_workflow.model
        counters = _counters(nway_workflow, ["stream", "hgemm"])
        for grid in self._pair_grids(LinearPerfModel._GATHER_CACHE_SIZE * 3):
            model.predict_candidates(counters, grid)
        assert len(model._gather_cache) <= LinearPerfModel._GATHER_CACHE_SIZE


# ----------------------------------------------------------------------
# AnalysisError guards on the error summaries
# ----------------------------------------------------------------------
class TestAnalysisErrorGuards:
    def test_empty_power_caps_named(self, context):
        with pytest.raises(AnalysisError, match="power-cap"):
            model_error_summary(context, power_caps=())

    def test_empty_candidate_grid_named(self, context):
        from repro.analysis.context import EvaluationContext

        config = copy.copy(context.config)
        object.__setattr__(config, "candidate_states", ())
        empty = EvaluationContext(workflow=context.workflow, config=config)
        with pytest.raises(AnalysisError, match="grid is empty"):
            model_error_summary(empty)

    def test_gi_size_empty_inputs_named(self, nway_workflow):
        model, simulator = nway_workflow.model, nway_workflow.simulator
        with pytest.raises(AnalysisError, match="power-cap"):
            model_error_by_gi_size(model, simulator, ())
        with pytest.raises(AnalysisError, match="workload-group"):
            model_error_by_gi_size(model, simulator, NWAY_CAPS, groups=[])
        with pytest.raises(AnalysisError, match="partition-state"):
            model_error_by_gi_size(model, simulator, NWAY_CAPS, states=())

    def test_gi_size_no_matching_samples_named(self, nway_workflow):
        model, simulator = nway_workflow.model, nway_workflow.simulator
        pair_state = PartitionState((4, 3), MemoryOption.PRIVATE)
        with pytest.raises(AnalysisError, match="no shared-key samples"):
            model_error_by_gi_size(
                model, simulator, NWAY_CAPS, states=(pair_state,)
            )


# ----------------------------------------------------------------------
# Basis-function units
# ----------------------------------------------------------------------
class TestBasisUnits:
    def test_servable_fraction_saturates(self):
        assert servable_fraction(0.1, 0.1, 0.25) == 1.0
        assert servable_fraction(0.5, 0.5, 0.25) == pytest.approx(0.25)
        assert servable_fraction(0.0, 0.0, 0.5) == 1.0

    def test_pool_terms_clip_points(self):
        below = pool_saturation_terms(0.05, 0.1, 0.25)
        assert below[0] == pytest.approx(0.4)
        assert below[1] == 0.0
        above = pool_saturation_terms(0.6, 0.9, 0.25)
        assert above[0] == 1.0
        assert above[1] == pytest.approx(1.25)

    def test_invalid_pool_fraction_rejected(self):
        with pytest.raises(ValueError):
            pool_saturation_terms(0.5, 0.5, 0.0)
        with pytest.raises(ValueError):
            servable_fraction(0.5, 0.5, 1.5)

    def test_dram_demand_clamped(self):
        base = PerformanceSimulator(noise=no_noise()).profile(
            DEFAULT_SUITE.get("stream")
        )
        assert 0.0 <= dram_demand(base) <= 1.0
        assert dram_demand(_overdriven_counters(base, 150.0)) == 1.0
        assert dram_demand(_overdriven_counters(base, -1.0)) == 0.0
