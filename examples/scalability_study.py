#!/usr/bin/env python3
"""Scalability observations (the paper's Section 3) on the simulated GPU.

Reproduces the two observation studies:

* Figure 4 — relative performance vs. GPC count for the private and shared
  LLC/HBM options at 250 W, for one benchmark of each class.
* Figure 5 — the same scalability curves while lowering the chip power cap
  from 250 W to 150 W (shared option).

It also demonstrates the low-level administration workflow (MIG instance
creation and power capping through the ``nvidia-smi``-style facade) that a
job manager would drive on a real A100.

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

from repro import MemoryOption, SimulatedSMI, solo_state
from repro.analysis import (
    EvaluationContext,
    figure4_scalability_partitioning,
    figure5_scalability_power,
)
from repro.analysis.report import render_scalability
from repro.gpu.mig import S1


def demonstrate_admin_workflow() -> None:
    """Show the nvidia-smi-style commands a deployment would issue."""
    smi = SimulatedSMI()
    smi.set_power_limit(210)
    smi.enable_mig()
    uuids = smi.apply_partition_state(S1)
    print("Administration workflow (simulated nvidia-smi):")
    for command in smi.command_log:
        print(f"  $ {command}")
    print("  Compute Instance UUIDs handed to CUDA_VISIBLE_DEVICES:")
    for uuid in uuids:
        print(f"    {uuid}")
    print()


def main() -> None:
    demonstrate_admin_workflow()

    context = EvaluationContext.create()

    fig4 = figure4_scalability_partitioning(context)
    print(render_scalability(fig4, "Figure 4 — scalability per partitioning option (250 W)"))
    print()

    fig5 = figure5_scalability_power(context)
    print(render_scalability(fig5, "Figure 5 — scalability per power cap (shared option)"))
    print()

    # A couple of headline observations, matching the paper's narrative.
    kmeans = fig4.curve("kmeans", MemoryOption.PRIVATE)
    print("Observations:")
    print(
        "  kmeans (un-scalable) keeps ~{:.0%} of its performance even on 1 GPC".format(
            kmeans.value_at(1)
        )
    )
    hgemm_150 = fig5.curve("hgemm", 150).value_at(7)
    hgemm_250 = fig5.curve("hgemm", 250).value_at(7)
    print(
        "  hgemm (Tensor intensive) loses {:.0%} of its 7-GPC performance when the cap "
        "drops from 250 W to 150 W".format(1 - hgemm_150 / hgemm_250)
    )
    stream_solo = context.simulator.solo_run(
        context.suite.get("stream"), solo_state(3, "private"), 250
    )
    print(
        "  stream on 3 private GPCs reaches only {:.0%} of full-GPU performance "
        "(bandwidth limited by its memory slices)".format(stream_solo.relative_performance)
    )


if __name__ == "__main__":
    main()
