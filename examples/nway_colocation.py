"""N-way co-location end to end: train on a spec-derived grid, decide for
3- and 4-application groups, and drain a queue with the group scheduler.

This is the Section 6 extension the engine was generalized for: partition
states are enumerated from the hardware spec (including mixed GPU-Instance
layouts), the allocator evaluates the enlarged candidate grid in one batched
call, and the co-scheduler assembles groups instead of pairs.
"""

from __future__ import annotations

from repro.cluster.manager import JobManager
from repro.cluster.scheduler import SchedulerConfig
from repro.core.workflow import PaperWorkflow, TrainingPlan, power_caps_for_spec
from repro.gpu.spec import A100_SPEC
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.groups import corun_group
from repro.workloads.suite import DEFAULT_SUITE


def main() -> None:
    # Two caps keep the example fast; drop the slice for the full grid.
    caps = power_caps_for_spec(A100_SPEC)[-2:]
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan.for_spec(A100_SPEC, power_caps=caps),
        power_caps=caps,
    )
    workflow.train()

    # --- allocate a 3-way and a 4-way group -------------------------------
    for name in ("TI-CI-MI1", "TI-CI-MI-US1"):
        group = corun_group(name)
        decision = workflow.decide_problem2(list(group.apps), alpha=0.05)
        print(f"{group.describe()}: {decision.describe()}")
        result = workflow.simulator.co_run(
            list(group.kernels()), decision.state, decision.power_cap_w
        )
        print(f"  measured: {result.summary()}")

    # --- drain a queue with groups of up to three jobs --------------------
    manager = JobManager.from_workflow(
        workflow,
        n_nodes=1,
        scheduler_config=SchedulerConfig(
            window_size=4, group_size=3, policy_name="problem2", alpha=0.0
        ),
    )
    kernels = [
        DEFAULT_SUITE.get(n)
        for n in ("igemm4", "stream", "bfs", "sgemm", "lud", "kmeans")
    ]
    report = manager.run_coscheduled(kernels)
    print(report.summary())
    largest = max((len(job.co_runners) + 1 for job in report.jobs), default=1)
    print(f"largest dispatched group: {largest} jobs")


if __name__ == "__main__":
    main()
