#!/usr/bin/env python3
"""Operator tooling: telemetry traces, flexible partitioning, data export.

Three smaller capabilities a deployment of the paper's method would want on
top of the core allocator:

1. **Telemetry** — synthesize the ``nvidia-smi dmon``-style power/clock
   trace of a co-run and report energy and throttling residency.
2. **Flexible partitioning** (the paper's future-work direction) — let the
   allocator choose from *every* realizable two-application partition state
   instead of only the 4+3 split, and measure what that freedom buys.
3. **Export** — dump the evaluation data (figures 4–11) as CSV + a JSON
   manifest for plotting.

Run with::

    python examples/telemetry_and_export.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import EvaluationContext
from repro.analysis.export import export_evaluation_bundle
from repro.analysis.extensions import flexible_partitioning_study
from repro.gpu.mig import S1
from repro.gpu.telemetry import TelemetryRecorder
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.pairs import corun_pair


def telemetry_demo() -> None:
    simulator = PerformanceSimulator(noise=no_noise())
    pair = corun_pair("TI-MI2")
    result = simulator.co_run(list(pair.kernels()), S1, 210)
    trace = TelemetryRecorder().record_corun(result)
    print(f"Telemetry for {pair.describe()} on {S1.describe()} @ 210 W:")
    print(f"  duration          : {trace.duration_s:.2f} s")
    print(f"  average power     : {trace.average_power_w:.1f} W")
    print(f"  peak power        : {trace.peak_power_w:.1f} W (cap violations: {trace.cap_violations})")
    print(f"  energy            : {trace.energy_joules:.1f} J")
    print(
        "  throttled samples : "
        f"{trace.throttled_fraction(simulator.spec.max_clock_ghz):.0%}"
    )
    print()


def flexible_partitioning_demo() -> None:
    pairs = [corun_pair(name) for name in ("TI-MI2", "CI-US1", "MI-MI2")]
    study = flexible_partitioning_study(
        simulator=PerformanceSimulator(noise=no_noise()), pairs=pairs
    )
    print(
        f"Flexible partitioning over {study.n_states} candidate states "
        f"(vs. the paper's 4):"
    )
    for row in study.rows:
        print(
            f"  {row.pair}: best(S1-S4)={row.best_paper_states:.3f}  "
            f"best(all)={row.best_flexible_states:.3f}  "
            f"proposal={row.proposal_flexible:.3f} ({row.proposal_state})"
        )
    print(
        f"  mean gain from extra flexibility: {study.mean_flexibility_gain:.3f}x, "
        f"allocator captures {study.mean_proposal_vs_best:.0%} of it\n"
    )


def export_demo() -> None:
    context = EvaluationContext.create()
    target = Path(tempfile.mkdtemp(prefix="repro-export-")) / "evaluation"
    written = export_evaluation_bundle(context, target, figures=(6, 9, 11))
    print("Exported evaluation bundle:")
    for name, path in sorted(written.items()):
        print(f"  {name:10s} -> {path}")


def main() -> None:
    telemetry_demo()
    flexible_partitioning_demo()
    export_demo()


if __name__ == "__main__":
    main()
