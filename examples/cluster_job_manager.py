#!/usr/bin/env python3
"""Cluster-level job management around the Resource & Power Allocator.

The paper positions its allocator inside a larger job manager (Figure 1) and
leaves the scheduler integration to future work.  This example runs that
surrounding system on the simulated cluster:

* a FIFO job queue with a look-ahead window for pair selection,
* profile runs for first-seen applications,
* co-scheduling decisions from the trained allocator (Problem 1 policy),
* a cluster-wide GPU power budget distributed across nodes,
* comparison against an exclusive-execution baseline.

Run with::

    python examples/cluster_job_manager.py
"""

from __future__ import annotations

from repro import DEFAULT_SUITE, PaperWorkflow
from repro.cluster import ClusterPowerManager, JobManager, SchedulerConfig
from repro.cluster.powerbudget import PowerRequest


def main() -> None:
    workflow = PaperWorkflow()
    workflow.train()

    # A small mixed job stream: Tensor, compute, memory, and unscalable jobs.
    job_names = [
        "igemm4", "stream", "srad", "needle", "hgemm", "lud",
        "dgemm", "kmeans", "fp16gemm", "leukocyte", "hotspot", "bfs",
    ]
    kernels = [DEFAULT_SUITE.get(name) for name in job_names]
    print(f"Submitting {len(kernels)} jobs: {', '.join(job_names)}\n")

    # ------------------------------------------------------------------
    # Co-scheduled execution (throughput policy at 250 W) vs exclusive runs.
    # ------------------------------------------------------------------
    config = SchedulerConfig(policy_name="problem1", power_cap_w=250.0, alpha=0.2, window_size=6)
    co_manager = JobManager.from_workflow(workflow, n_nodes=2, scheduler_config=config)
    co_report = co_manager.run_coscheduled(kernels)

    baseline_manager = JobManager.from_workflow(workflow, n_nodes=2)
    baseline_report = baseline_manager.run_exclusive(kernels)

    print(co_report.summary())
    print(baseline_report.summary())
    speedup = baseline_report.makespan_s / co_report.makespan_s
    print(f"Co-scheduling changes the makespan by a factor of {speedup:.2f}x\n")

    print("Per-job placement (co-scheduled run):")
    for job in co_report.jobs:
        partner = f", partner job {job.co_runner}" if job.co_runner is not None else ""
        print(f"  job {job.job_id:2d} {job.name:12s} finished at t={job.finish_time:.2f}s{partner}")
    print()

    # ------------------------------------------------------------------
    # Cluster-wide power budgeting: each node asks for the cap its current
    # pair would like (Problem 2), the manager splits a fixed budget.
    # ------------------------------------------------------------------
    power_manager = ClusterPowerManager()
    pairs = [("igemm4", "stream"), ("srad", "needle"), ("hgemm", "lud")]
    requests = []
    for node_id, (app1, app2) in enumerate(pairs):
        decision = workflow.decide_problem2([app1, app2], alpha=0.2)
        requests.append(
            PowerRequest(
                node_id=node_id,
                desired_w=decision.power_cap_w,
                minimum_w=workflow.simulator.spec.min_power_cap_w,
            )
        )
        print(
            f"node {node_id}: pair ({app1}, {app2}) requests "
            f"{decision.power_cap_w:.0f} W ({decision.state.describe()})"
        )

    total_budget = 550.0
    allocation = power_manager.distribute(requests, total_budget_w=total_budget)
    print(f"\nDistributing a {total_budget:.0f} W GPU budget across {len(requests)} nodes:")
    for node_id, watts in sorted(allocation.items()):
        print(f"  node {node_id}: {watts:.1f} W")
    print(f"  head-room left for other racks: {power_manager.headroom(allocation, total_budget):.1f} W")


if __name__ == "__main__":
    main()
