#!/usr/bin/env python3
"""Quickstart: from nothing to a partitioning + power-cap decision.

This walks the paper's workflow (Figure 7) end to end on the simulated
A100-class GPU:

1. offline: calibrate the linear performance model on the benchmark suite;
2. online: profile the two applications we want to co-locate (first run);
3. ask the Resource & Power Allocator for the best partition state and
   power cap under both optimization problems;
4. verify the decision against the simulator's measured ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PaperWorkflow
from repro.gpu.mig import CORUN_STATES
from repro.workloads.pairs import corun_pair


def main() -> None:
    pair = corun_pair("TI-MI2")  # igemm4 (Tensor intensive) + stream (memory intensive)
    print(f"Co-location candidate: {pair.describe()}\n")

    # ------------------------------------------------------------------
    # Offline: train the model coefficients (solo + co-run sweeps).
    # ------------------------------------------------------------------
    workflow = PaperWorkflow()
    workflow.train()
    print("Offline training done:")
    report = workflow.offline.trainer.last_report
    if report is not None:
        print(f"  solo measurements : {report.n_solo_measurements}")
        print(f"  co-run measurements: {report.n_corun_measurements}\n")

    # ------------------------------------------------------------------
    # Online: Problem 1 (throughput at a given cap) and Problem 2
    # (energy efficiency, cap chosen by the allocator).
    # ------------------------------------------------------------------
    decision1 = workflow.decide_problem1([pair.app1, pair.app2], power_cap_w=230, alpha=0.2)
    print("Problem 1 (max throughput @ 230 W, fairness > 0.2):")
    print(f"  {decision1.describe()}")

    decision2 = workflow.decide_problem2([pair.app1, pair.app2], alpha=0.2)
    print("Problem 2 (max throughput/P, fairness > 0.2):")
    print(f"  {decision2.describe()}\n")

    # ------------------------------------------------------------------
    # Verify against the measured (simulated) ground truth.
    # ------------------------------------------------------------------
    simulator = workflow.simulator
    kernels = list(pair.kernels())
    print("Measured throughput at 230 W for every candidate state:")
    for state in CORUN_STATES:
        result = simulator.co_run(kernels, state, 230)
        marker = "  <-- selected" if state.key() == decision1.state.key() else ""
        print(
            f"  {state.describe():28s} WS={result.weighted_speedup:.3f} "
            f"fairness={result.fairness:.3f}{marker}"
        )

    chosen = simulator.co_run(kernels, decision1.state, 230)
    best = max(
        simulator.co_run(kernels, state, 230).weighted_speedup for state in CORUN_STATES
    )
    print(
        f"\nThe selected state achieves {100 * chosen.weighted_speedup / best:.1f}% "
        "of the best measured throughput."
    )


if __name__ == "__main__":
    main()
