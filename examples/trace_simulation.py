#!/usr/bin/env python3
"""Trace-driven cluster simulation: online arrivals over the co-scheduler.

The batch job manager (``examples/cluster_job_manager.py``) drains a queue
that is fully populated at t=0.  This walkthrough runs the *online* story
instead:

* a synthetic Poisson trace of arriving jobs (from a weighted job mix),
* the event-driven :class:`ClusterSimulator` dispatching them onto nodes,
* MIG repartitioning priced with a reconfiguration latency,
* a cluster-wide power budget re-distributed as the load shifts,
* the batch/event parity check (an all-at-t=0 trace reproduces
  ``JobManager.drain()``),
* and trace save/load for replaying the exact same workload.

Run with::

    python examples/trace_simulation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PaperWorkflow
from repro.cluster import (
    ClusterSimulator,
    JobManager,
    SchedulerConfig,
    SimulationConfig,
)
from repro.traces import Trace, load_trace, poisson_trace, save_trace
from repro.workloads.mixes import TENSOR_HEAVY_MIX


def main() -> None:
    workflow = PaperWorkflow()
    workflow.train()
    scheduler_config = SchedulerConfig(
        policy_name="problem1", power_cap_w=230.0, alpha=0.2, window_size=6
    )

    # ------------------------------------------------------------------
    # 1. Online arrivals: a tensor-heavy Poisson stream on two nodes.
    # ------------------------------------------------------------------
    trace = poisson_trace(
        arrival_rate_per_s=1.0, duration_s=120.0, seed=7, mix=TENSOR_HEAVY_MIX
    )
    print(trace.summary())

    simulator = ClusterSimulator.from_workflow(
        workflow, n_nodes=2, scheduler_config=scheduler_config
    )
    report = simulator.run(trace)
    print(report.summary())
    print()

    # ------------------------------------------------------------------
    # 2. The same trace with priced MIG reconfiguration and a power budget.
    # ------------------------------------------------------------------
    constrained = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=2,
        scheduler_config=scheduler_config,
        config=SimulationConfig(repartition_latency_s=2.0, power_budget_w=420.0),
    )
    constrained_report = constrained.run(trace)
    print(constrained_report.summary())
    slowdown = constrained_report.makespan_s / report.makespan_s
    print(
        f"Repartition latency + budget stretch the makespan by {slowdown:.2f}x\n"
    )

    # ------------------------------------------------------------------
    # 3. Parity: the all-at-t=0 trace reproduces the batch job manager.
    # ------------------------------------------------------------------
    names = ["igemm4", "stream", "srad", "needle", "hgemm", "lud"]
    batch = JobManager.from_workflow(
        workflow, n_nodes=2, scheduler_config=scheduler_config
    ).drain([workflow.suite.get(name) for name in names])
    event = ClusterSimulator.from_workflow(
        workflow, n_nodes=2, scheduler_config=scheduler_config
    ).run(Trace.all_at_zero(names))
    print(batch.summary())
    print(
        f"event-loop replay: makespan={event.makespan_s:.2f}s "
        f"mean turnaround={event.mean_turnaround_s:.2f}s "
        f"(delta={abs(event.makespan_s - batch.makespan_s):.2e}s)"
    )
    print()

    # ------------------------------------------------------------------
    # 4. Persistence: save the trace, reload it, replay it bit-for-bit.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(trace, Path(tmp) / "trace.csv")
        replayed = load_trace(path)
        replay_report = ClusterSimulator.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        ).run(replayed)
        print(f"replayed {replayed.summary()}")
        print(
            f"replay p99 wait matches: "
            f"{abs(replay_report.wait.p99_s - report.wait.p99_s):.2e}s"
        )


if __name__ == "__main__":
    main()
