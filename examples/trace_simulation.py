#!/usr/bin/env python3
"""Trace-driven cluster simulation: online arrivals over the co-scheduler.

The batch job manager (``examples/cluster_job_manager.py``) drains a queue
that is fully populated at t=0.  This walkthrough runs the *online* story
through the service layer — one :class:`repro.api.PlannerService` trains
once and every section reuses the hot session:

* a synthetic Poisson trace of arriving jobs (from a weighted job mix),
* the event-driven :class:`ClusterSimulator` dispatching them onto nodes,
* MIG repartitioning priced with a reconfiguration latency plus a
  cluster-wide power budget re-distributed as the load shifts,
* the batch/event parity check (an all-at-t=0 trace reproduces
  ``JobManager.drain()``),
* and trace save/load + a ``SimulationRequest`` replay of the saved file.

Run with::

    python examples/trace_simulation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import PlannerService, SimulationRequest
from repro.cluster import JobManager, SchedulerConfig
from repro.traces import Trace, poisson_trace, save_trace


def main() -> None:
    service = PlannerService()
    base_request = SimulationRequest(
        policy="problem1", power_cap_w=230.0, alpha=0.2, window_size=6, n_nodes=2
    )

    # ------------------------------------------------------------------
    # 1. Online arrivals: a tensor-heavy Poisson stream on two nodes.
    # ------------------------------------------------------------------
    from repro.workloads.mixes import TENSOR_HEAVY_MIX

    trace = poisson_trace(
        arrival_rate_per_s=1.0, duration_s=120.0, seed=7, mix=TENSOR_HEAVY_MIX
    )
    print(trace.summary())

    report = service.simulate_trace(trace, base_request)
    print(report.report_summary)
    print()

    # ------------------------------------------------------------------
    # 2. The same trace with priced MIG reconfiguration and a power budget
    #    — the hot session is reused, nothing retrains.
    # ------------------------------------------------------------------
    constrained_request = SimulationRequest(
        policy="problem1",
        power_cap_w=230.0,
        alpha=0.2,
        window_size=6,
        n_nodes=2,
        repartition_latency_s=2.0,
        power_budget_w=420.0,
    )
    constrained = service.simulate_trace(trace, constrained_request)
    print(constrained.report_summary)
    slowdown = constrained.makespan_s / report.makespan_s
    print(
        f"Repartition latency + budget stretch the makespan by {slowdown:.2f}x "
        f"(training runs so far: {service.stats.trainings_run})\n"
    )

    # ------------------------------------------------------------------
    # 3. Parity: the all-at-t=0 trace reproduces the batch job manager.
    # ------------------------------------------------------------------
    session = service.session_for("a100", group_size=2)
    workflow = session.workflow
    names = ["igemm4", "stream", "srad", "needle", "hgemm", "lud"]
    batch = JobManager.from_workflow(
        workflow,
        n_nodes=2,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=230.0, alpha=0.2, window_size=6
        ),
    ).drain([workflow.suite.get(name) for name in names])
    event = service.simulate_trace(Trace.all_at_zero(names), base_request)
    print(batch.summary())
    print(
        f"event-loop replay: makespan={event.makespan_s:.2f}s "
        f"mean turnaround={event.turnaround.mean_s:.2f}s "
        f"(delta={abs(event.makespan_s - batch.makespan_s):.2e}s)"
    )
    print()

    # ------------------------------------------------------------------
    # 4. Persistence: save the trace, then replay the file through a
    #    SimulationRequest — the path the CLI's --trace flag takes.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(trace, Path(tmp) / "trace.csv")
        replay = service.simulate(
            SimulationRequest(
                trace_path=str(path),
                policy="problem1",
                power_cap_w=230.0,
                alpha=0.2,
                window_size=6,
                n_nodes=2,
            )
        )
        print(f"replayed {replay.trace_summary}")
        print(
            f"replay p99 wait matches: "
            f"{abs(replay.wait.p99_s - report.wait.p99_s):.2e}s"
        )


if __name__ == "__main__":
    main()
