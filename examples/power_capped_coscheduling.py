#!/usr/bin/env python3
"""Power-capped co-scheduling study across all Table 8 workloads.

Solves both optimization problems for every co-run workload of the paper and
compares the allocator's choice against the measured best and worst
configurations — the study behind Figures 9–13.

Run with::

    python examples/power_capped_coscheduling.py
"""

from __future__ import annotations

from repro.analysis import (
    EvaluationContext,
    figure9_problem1,
    figure10_problem1_power_sweep,
    figure11_problem2_efficiency,
    figure12_problem2_power_selection,
    model_error_summary,
)
from repro.analysis.report import ascii_table, render_comparison, render_power_sweep


def main() -> None:
    print("Building the evaluation context (offline training)...\n")
    context = EvaluationContext.create()

    # ------------------------------------------------------------------
    # Model accuracy (Section 5.2.1)
    # ------------------------------------------------------------------
    errors = model_error_summary(context)
    print(
        f"Model accuracy over {errors.n_samples} (workload, state, cap) combinations: "
        f"throughput error {errors.throughput_mape_pct:.1f}%, "
        f"fairness error {errors.fairness_mape_pct:.1f}% "
        f"(paper: 9.7% / 14.5%)\n"
    )

    # ------------------------------------------------------------------
    # Problem 1: throughput at a fixed cap
    # ------------------------------------------------------------------
    fig9 = figure9_problem1(context)
    print(f"Problem 1 — throughput at {fig9.power_cap_w:.0f} W, alpha={fig9.alpha}:")
    print(render_comparison(fig9.comparison, "throughput"))
    print()

    fig10 = figure10_problem1_power_sweep(context)
    print("Problem 1 — geometric-mean throughput vs. power cap:")
    print(render_power_sweep(fig10))
    print()

    # ------------------------------------------------------------------
    # Problem 2: energy efficiency with the cap as a free variable
    # ------------------------------------------------------------------
    fig11 = figure11_problem2_efficiency(context)
    for alpha, summary in sorted(fig11.per_alpha.items()):
        print(f"Problem 2 — energy efficiency, alpha={alpha}:")
        print(render_comparison(summary, "throughput/W"))
        print()

    fig12 = figure12_problem2_power_selection(context)
    for alpha, rows in sorted(fig12.per_alpha.items()):
        print(f"Problem 2 — selected power caps, alpha={alpha}:")
        print(
            ascii_table(
                ["workload", "worst P[W]", "proposal P[W]", "best P[W]"],
                [
                    (r.pair, f"{r.worst_power_w:.0f}", f"{r.proposal_power_w:.0f}", f"{r.best_power_w:.0f}")
                    for r in rows
                ],
            )
        )
        print()


if __name__ == "__main__":
    main()
