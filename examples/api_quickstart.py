#!/usr/bin/env python3
"""Embed the service-layer API: train once, decide many.

The :class:`repro.api.PlannerService` facade is the public surface of the
library: typed requests in, typed responses out, and a session cache that
runs the expensive offline calibration at most once per hardware
configuration.  This walkthrough shows the embedding story:

1. one service instance, first ``decide()`` trains, the rest are online;
2. ``decide_batch()`` fanning a list of requests over one hot session;
3. ``states()`` enumeration (no training at all);
4. JSON round-tripping of requests and responses (the CLI's ``--json``
   payloads are exactly these documents);
5. cross-process persistence through a model directory.

Run with::

    python examples/api_quickstart.py
"""

from __future__ import annotations

import json
import tempfile

from repro.api import (
    DecisionRequest,
    DecisionResult,
    PlannerService,
    StatesRequest,
    decision_requests,
)


def main() -> None:
    service = PlannerService()

    # ------------------------------------------------------------------
    # 1. Train once, decide many: only the first decide() pays training.
    # ------------------------------------------------------------------
    first = service.decide(
        DecisionRequest(apps=("igemm4", "stream"), policy="problem1", power_cap_w=230.0)
    )
    print(f"first decision : {first.describe()}")
    second = service.decide(DecisionRequest(apps=("srad", "needle"), policy="problem2"))
    print(f"second decision: {second.describe()}")
    stats = service.stats
    print(
        f"sessions built={stats.sessions_built} trainings={stats.trainings_run} "
        f"session reuses={stats.session_reuses}\n"
    )

    # ------------------------------------------------------------------
    # 2. Batch decide: one call, many groups, one hot session.
    # ------------------------------------------------------------------
    groups = [
        ("igemm4", "stream"),
        ("hgemm", "bfs"),
        ("sgemm", "lud"),
        ("igemm4", "stream"),  # duplicate: answered once, fanned back out
    ]
    batch = service.decide_batch(decision_requests(groups, power_cap_w=230.0))
    for group, result in zip(groups, batch):
        print(f"{'+'.join(group):16s} -> {result.state} @ {result.power_cap_w:.0f}W")
    print(
        f"batch of {len(groups)} served with "
        f"{service.stats.trainings_run} training run(s) total\n"
    )

    # ------------------------------------------------------------------
    # 3. Partition-state enumeration never trains.
    # ------------------------------------------------------------------
    states = service.states(StatesRequest(n_apps=3))
    print(
        f"{states.n_states} realizable 3-application state(s) on "
        f"{states.spec_description}, e.g. {states.states[0].state}\n"
    )

    # ------------------------------------------------------------------
    # 4. Responses are plain data: JSON out, JSON in, equal again.
    # ------------------------------------------------------------------
    document = json.dumps(first.to_dict())
    restored = DecisionResult.from_dict(json.loads(document))
    print(f"JSON round-trip of the first decision intact: {restored == first}\n")

    # ------------------------------------------------------------------
    # 5. A model directory persists trained coefficients across services
    #    (and across processes) through the fingerprinted model store.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as model_dir:
        writer = PlannerService(model_dir=model_dir)
        writer.decide(DecisionRequest(apps=("igemm4", "stream")))
        reader = PlannerService(model_dir=model_dir)
        replay = reader.decide(DecisionRequest(apps=("igemm4", "stream")))
        print(
            f"second service loaded the cache: trainings={reader.stats.trainings_run} "
            f"models loaded={reader.stats.models_loaded} "
            f"(same decision: {replay.state == first.state})"
        )


if __name__ == "__main__":
    main()
