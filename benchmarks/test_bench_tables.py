"""Benchmarks regenerating Tables 6, 7 and 8 of the paper."""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import render_table6, render_table7, render_table8
from repro.analysis.tables import table6_gemm_variants, table7_classification, table8_corun_pairs
from repro.workloads.kernel import WorkloadClass


def test_table6_gemm_variants(benchmark):
    """Table 6: the nine CUTLASS GEMM variants and their derived models."""
    rows = benchmark(table6_gemm_variants)
    emit("Table 6 — DGEMM/GEMM variant specifications", render_table6(rows))
    assert len(rows) == 9
    assert {r.pipe for r in rows} >= {"fp32", "fp64", "tensor_mixed", "tensor_double", "tensor_int"}


def test_table7_classification(benchmark, context):
    """Table 7: classify every benchmark with the paper's measurement rule."""
    data = benchmark.pedantic(table7_classification, args=(context,), rounds=1, iterations=1)
    emit("Table 7 — benchmark classification", render_table7(data))
    # Reproduction target: the measured classification matches the paper's.
    assert data.accuracy == 1.0
    groups = data.by_class
    assert len(groups[WorkloadClass.TI]) == 7
    assert len(groups[WorkloadClass.CI]) == 6
    assert len(groups[WorkloadClass.MI]) == 5
    assert len(groups[WorkloadClass.US]) == 6


def test_table8_corun_pairs(benchmark):
    """Table 8: the eighteen co-run workloads."""
    data = benchmark(table8_corun_pairs)
    emit("Table 8 — co-run workload definitions", render_table8(data))
    assert len(data.pairs) == 18
    assert data.names[8:10] == ("TI-MI1", "TI-MI2")
