"""Benchmark regenerating Figure 13: geomean energy efficiency vs alpha.

Paper shape: as the fairness threshold alpha grows from 0 to 0.42 the
achievable (and the proposal's) energy efficiency stays flat or degrades
slightly — a tighter constraint can only shrink the feasible set — and the
proposal stays close to the best configuration for every alpha.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure13_efficiency_vs_alpha
from repro.analysis.report import render_alpha_sweep


def test_bench_figure13_efficiency_vs_alpha(benchmark, context):
    data = benchmark.pedantic(
        figure13_efficiency_vs_alpha, args=(context,), rounds=1, iterations=1
    )
    emit("Figure 13 — Problem 2 geomean energy efficiency vs alpha", render_alpha_sweep(data))
    geomeans = data.geomeans()
    assert [alpha for alpha, *_ in geomeans] == sorted(context.config.alpha_sweep)
    for _, worst, proposal, best in geomeans:
        assert worst <= proposal + 1e-12 <= best + 1e-12
        assert proposal >= 0.88 * best
    # Tightening the constraint can only shrink the feasible set, so over the
    # alphas where *all* 18 workloads still have feasible configurations the
    # best achievable geomean is non-increasing.  (For the largest alphas a
    # few workloads drop out entirely on our substrate, which changes the
    # geomean's population — see EXPERIMENTS.md.)
    full_population = [
        (alpha, best)
        for (alpha, _, _, best) in geomeans
        if len(data.per_alpha[alpha].rows) == 18
    ]
    bests = [best for _, best in full_population]
    assert len(bests) >= 3
    assert all(later <= earlier * 1.02 for earlier, later in zip(bests, bests[1:]))
