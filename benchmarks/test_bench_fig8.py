"""Benchmark regenerating Figure 8 and the Section 5.2.1 accuracy statistic.

Paper numbers: the linear model tracks the measured throughput and fairness
across all 18 workloads and the four states; the average relative error over
all hardware setups is about 9.7 % for throughput and 14.5 % for fairness.
The reproduction asserts the same order of magnitude (the substrate differs,
so the exact figures do not transfer).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.errors import model_error_summary
from repro.analysis.figures import figure8_model_accuracy
from repro.analysis.report import render_figure8


def test_bench_figure8_accuracy_at_250w(benchmark, context):
    data = benchmark.pedantic(
        figure8_model_accuracy, args=(context,), kwargs={"power_cap_w": 250.0}, rounds=1, iterations=1
    )
    emit("Figure 8 — estimated vs measured throughput/fairness (250 W)", render_figure8(data))
    assert len(data.rows) == 18 * 4
    assert data.throughput_mape_pct < 15.0
    assert data.fairness_mape_pct < 20.0
    measured = np.array([r.measured_throughput for r in data.rows])
    estimated = np.array([r.estimated_throughput for r in data.rows])
    assert np.corrcoef(measured, estimated)[0, 1] > 0.9


def test_bench_model_error_all_caps(benchmark, context):
    """The paper's headline accuracy number, averaged over every power cap."""
    summary = benchmark.pedantic(model_error_summary, args=(context,), rounds=1, iterations=1)
    emit(
        "Section 5.2.1 — average model error across all workloads and hardware setups",
        f"throughput error: {summary.throughput_mape_pct:.1f}%  (paper: ~9.7%)\n"
        f"fairness error  : {summary.fairness_mape_pct:.1f}%  (paper: ~14.5%)\n"
        f"samples         : {summary.n_samples}",
    )
    assert summary.n_samples == 18 * 4 * 6
    assert summary.throughput_mape_pct < 15.0
    assert summary.fairness_mape_pct < 20.0
