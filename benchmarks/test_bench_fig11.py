"""Benchmark regenerating Figure 11: Problem 2 energy efficiency.

Paper shape: for both fairness thresholds (alpha = 0.20 and 0.42) the
proposal's energy efficiency (throughput per watt of cap) is close to the
best measured combination of partition state and power cap, and clearly
better than the worst feasible one.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure11_problem2_efficiency
from repro.analysis.report import render_comparison


def test_bench_figure11_problem2_efficiency(benchmark, context):
    data = benchmark.pedantic(
        figure11_problem2_efficiency, args=(context,), rounds=1, iterations=1
    )
    for alpha, summary in sorted(data.per_alpha.items()):
        emit(
            f"Figure 11 — Problem 2 energy efficiency (alpha={alpha})",
            render_comparison(summary, "throughput/W"),
        )
    assert set(data.per_alpha) == {0.20, 0.42}
    for alpha, summary in data.per_alpha.items():
        for row in summary.rows:
            # Worst/best are taken over the *feasible* measured combinations,
            # so the sandwich only has to hold when the proposal itself met
            # the fairness constraint.
            if not row.fairness_violated:
                assert row.worst - 1e-12 <= row.proposal <= row.best + 1e-12
        assert summary.geomean_proposal >= 0.9 * summary.geomean_best
        assert summary.geomean_proposal > 1.2 * summary.geomean_worst

    # At alpha=0.2 every Table 8 workload has feasible configurations and the
    # proposal never violates the constraint (as in the paper).
    assert len(data.per_alpha[0.20].rows) == 18
    assert data.per_alpha[0.20].fairness_violations == 0
    # alpha=0.42 sits exactly at the paper's feasibility edge; on our
    # simulated substrate a few workloads have no feasible configuration at
    # all and a handful of proposals land marginally below the threshold
    # (documented in EXPERIMENTS.md).  Keep those deviations bounded.
    assert len(data.per_alpha[0.42].rows) >= 12
    assert data.per_alpha[0.42].fairness_violations <= 6
    # The looser threshold admits lower power caps, so its best achievable
    # efficiency is at least as good as under the strict threshold for every
    # workload present in both sweeps.
    loose = {row.pair: row.best for row in data.per_alpha[0.20].rows}
    strict = {row.pair: row.best for row in data.per_alpha[0.42].rows}
    shared = set(loose) & set(strict)
    assert shared
    assert all(loose[p] >= strict[p] - 1e-12 for p in shared)
