"""Benchmark regenerating Figure 10: Problem 1 geomean throughput vs power cap.

Paper shape: for every cap between 150 W and 250 W the proposal's geometric
mean throughput is close to the best configuration's, and the achievable
throughput grows (mildly) with the allowed power.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure10_problem1_power_sweep
from repro.analysis.report import render_power_sweep


def test_bench_figure10_problem1_power_sweep(benchmark, context):
    data = benchmark.pedantic(
        figure10_problem1_power_sweep, args=(context,), rounds=1, iterations=1
    )
    emit("Figure 10 — Problem 1 geomean throughput vs power cap (alpha=0.2)", render_power_sweep(data))
    geomeans = data.geomeans()
    assert [cap for cap, *_ in geomeans] == list(context.config.power_caps)
    for _, worst, proposal, best in geomeans:
        assert worst <= proposal + 1e-9 <= best + 1e-9
        assert proposal >= 0.93 * best
    proposals = [row[2] for row in geomeans]
    # More power never hurts the proposal's throughput (within noise).
    assert proposals[-1] >= proposals[0] - 0.01
    # No fairness violations at any cap.
    for summary in data.per_power_cap.values():
        assert summary.fairness_violations == 0
