"""Micro-benchmarks of the N-way allocator: scalar vs batched candidate
evaluation and the LRU decision cache, reported in decisions/second.

The batched path must be measurably faster than per-candidate evaluation on
the enlarged N-way grid — that speedup is what makes spec-derived candidate
spaces (hundreds of states instead of Table 5's four) affordable inside a
scheduling loop.
"""

from __future__ import annotations

import time

import pytest

from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem2Policy
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.gpu.spec import A100_SPEC
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.groups import corun_group

from conftest import emit


@pytest.fixture(scope="module")
def nway_workflow():
    """A workflow trained on the full spec-derived grid (supports N-way)."""
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan.for_spec(A100_SPEC),
    )
    workflow.train()
    return workflow


@pytest.fixture(scope="module")
def group_counters(nway_workflow):
    group = corun_group("TI-CI-MI1")
    database = nway_workflow.online.database
    return [database.get(name).counters for name in group.apps]


@pytest.fixture(scope="module")
def group_states(nway_workflow):
    return nway_workflow.online.candidate_states_for(3)


def _decisions_per_second(allocator, counters, states, policy, repeat=20):
    start = time.perf_counter()
    for _ in range(repeat):
        allocator.solve(counters, policy, states=states)
    elapsed = time.perf_counter() - start
    return repeat / elapsed


def test_bench_nway_scalar_vs_batched(nway_workflow, group_counters, group_states):
    """Batched grid evaluation must beat the scalar path on the N-way grid."""
    policy = Problem2Policy(alpha=0.05)
    n_candidates = len(group_states) * len(policy.candidate_power_caps())
    scalar_alloc = ResourcePowerAllocator(
        nway_workflow.model,
        candidate_states=group_states,
        cache_size=0,
        batch_threshold=10**9,
    )
    batched_alloc = ResourcePowerAllocator(
        nway_workflow.model,
        candidate_states=group_states,
        cache_size=0,
        batch_threshold=0,
    )
    # Warm up (first call pays numpy allocation paths), then measure.
    scalar_alloc.solve(group_counters, policy)
    batched_alloc.solve(group_counters, policy)
    scalar_rate = _decisions_per_second(scalar_alloc, group_counters, group_states, policy)
    batched_rate = _decisions_per_second(batched_alloc, group_counters, group_states, policy)
    emit(
        "N-way allocator throughput (3-app group)",
        f"candidate grid: {n_candidates} (S, P) points\n"
        f"scalar : {scalar_rate:8.1f} decisions/s\n"
        f"batched: {batched_rate:8.1f} decisions/s\n"
        f"speedup: {batched_rate / scalar_rate:.2f}x",
    )
    assert batched_rate > scalar_rate, (
        f"batched evaluation ({batched_rate:.1f}/s) should beat "
        f"scalar ({scalar_rate:.1f}/s) on a {n_candidates}-candidate grid"
    )


def test_bench_nway_batched_solve(benchmark, nway_workflow, group_counters, group_states):
    """Steady-state batched N-way decision latency (cache disabled)."""
    policy = Problem2Policy(alpha=0.05)
    allocator = ResourcePowerAllocator(
        nway_workflow.model,
        candidate_states=group_states,
        cache_size=0,
        batch_threshold=0,
    )
    decision = benchmark(lambda: allocator.solve(group_counters, policy, states=group_states))
    assert decision.state.n_apps == 3


def test_bench_nway_cached_decision(benchmark, nway_workflow, group_counters, group_states):
    """A cache hit answers the same request orders of magnitude faster."""
    policy = Problem2Policy(alpha=0.05)
    allocator = ResourcePowerAllocator(
        nway_workflow.model,
        candidate_states=group_states,
        cache_size=16,
    )
    allocator.solve(group_counters, policy, states=group_states)  # prime
    decision = benchmark(lambda: allocator.solve(group_counters, policy, states=group_states))
    assert allocator.cache.hits > 0
    assert decision.state.n_apps == 3
