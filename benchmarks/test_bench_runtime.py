"""Runtime (wall-clock) benchmarks of the library's hot paths.

These are conventional pytest-benchmark micro-benchmarks: they time the
pieces a job manager would run in its scheduling loop (profile lookup +
model prediction + search) and the simulator underneath, so regressions in
the library's own performance are visible.
"""

from __future__ import annotations

from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem2Policy
from repro.gpu.mig import S1, MemoryOption, solo_state
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE


def test_bench_runtime_solo_simulation(benchmark):
    """Simulating one solo run (roofline + governor bisection)."""
    simulator = PerformanceSimulator(noise=no_noise())
    kernel = DEFAULT_SUITE.get("hgemm")
    state = solo_state(4, MemoryOption.SHARED)
    result = benchmark(lambda: simulator.solo_run(kernel, state, 190.0))
    assert result.relative_performance > 0


def test_bench_runtime_corun_simulation(benchmark):
    """Simulating one co-run (bandwidth fixed point nested in the governor)."""
    simulator = PerformanceSimulator(noise=no_noise())
    kernels = list(corun_pair("TI-MI2").kernels())
    result = benchmark(lambda: simulator.co_run(kernels, S1, 210.0))
    assert result.weighted_speedup > 0


def test_bench_runtime_profile_collection(benchmark):
    """Collecting one profile (counter synthesis)."""
    simulator = PerformanceSimulator(noise=no_noise())
    kernel = DEFAULT_SUITE.get("srad")
    counters = benchmark(lambda: simulator.profile(kernel))
    assert counters.compute_throughput > 0


def test_bench_runtime_online_decision(benchmark, context):
    """One online allocation decision (the latency a job scheduler sees)."""
    allocator = ResourcePowerAllocator(
        context.model,
        candidate_states=context.config.candidate_states,
        power_caps=context.config.power_caps,
    )
    counters = list(context.pair_profiles(corun_pair("CI-MI1")))
    policy = Problem2Policy(alpha=0.2, power_caps=context.config.power_caps)
    decision = benchmark(lambda: allocator.solve(counters, policy))
    assert decision.state in context.config.candidate_states


def test_bench_runtime_offline_training(benchmark):
    """The full offline calibration on a reduced grid (kept small so the
    harness stays fast; the full grid is exercised by the figure benches)."""
    from repro.core.workflow import PaperWorkflow, TrainingPlan

    def train():
        workflow = PaperWorkflow(
            simulator=PerformanceSimulator(noise=no_noise()),
            plan=TrainingPlan(
                gpc_counts=(3, 4),
                options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
                power_caps=(150.0, 250.0),
            ),
            power_caps=(150.0, 250.0),
        )
        return workflow.train()

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    assert model.fitted_scalability_states()
