"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's own evaluation: they quantify what the
interference term, the hand-designed Table 4 basis, and the exhaustive
search contribute, and how robust the pipeline is to measurement noise.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.ablation import (
    basis_function_ablation,
    interference_term_ablation,
    noise_sensitivity_ablation,
    search_strategy_ablation,
)


def test_bench_ablation_interference_term(benchmark, context):
    """Dropping the D·J(F_j) term must cost accuracy on co-run predictions."""
    result = benchmark.pedantic(
        interference_term_ablation, args=(context,), rounds=1, iterations=1
    )
    emit(
        "Ablation — interference term",
        f"full model      : throughput {result.full_throughput_mape_pct:.1f}%  "
        f"fairness {result.full_fairness_mape_pct:.1f}%\n"
        f"scalability only: throughput {result.no_interference_throughput_mape_pct:.1f}%  "
        f"fairness {result.no_interference_fairness_mape_pct:.1f}%",
    )
    assert result.no_interference_throughput_mape_pct >= result.full_throughput_mape_pct
    assert result.throughput_degradation_pct >= 0.0


def test_bench_ablation_search_strategy(benchmark, context):
    """Hill climbing (the paper's scaling suggestion) matches exhaustive
    search on the paper-sized candidate space."""
    result = benchmark.pedantic(search_strategy_ablation, args=(context,), rounds=1, iterations=1)
    emit(
        "Ablation — search strategy",
        f"workloads compared      : {result.n_workloads}\n"
        f"identical decisions     : {result.n_same_decision} ({result.agreement:.0%})\n"
        f"mean objective ratio    : {result.mean_objective_ratio:.4f}\n"
        f"candidates (exhaustive) : {result.exhaustive_candidates_evaluated}\n"
        f"candidates (hill climb) : {result.hill_climbing_candidates_evaluated}",
    )
    assert result.agreement >= 0.8
    assert result.mean_objective_ratio >= 0.98
    assert result.hill_climbing_candidates_evaluated <= result.exhaustive_candidates_evaluated


@pytest.mark.slow
def test_bench_ablation_basis_functions(benchmark, context):
    """The Table 4 basis against regressing on raw counters."""
    result = benchmark.pedantic(
        basis_function_ablation,
        args=(context,),
        kwargs={"power_caps": (250.0,)},
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation — basis functions",
        "\n".join(
            f"{name:12s}: throughput {result.throughput_mape_pct[name]:.1f}%  "
            f"fairness {result.fairness_mape_pct[name]:.1f}%"
            for name in result.throughput_mape_pct
        ),
    )
    assert set(result.throughput_mape_pct) == {"table4", "raw-counters"}
    for value in result.throughput_mape_pct.values():
        assert value < 40.0


@pytest.mark.slow
def test_bench_ablation_noise_sensitivity(benchmark):
    """Model error as a function of the measurement-noise level."""
    result = benchmark.pedantic(
        noise_sensitivity_ablation,
        kwargs={"sigmas": (0.0, 0.03, 0.08), "power_caps": (250.0,)},
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation — measurement-noise sensitivity",
        "\n".join(
            f"sigma={sigma:4.2f}: throughput {result.throughput_mape_pct_by_sigma[sigma]:.1f}%  "
            f"fairness {result.fairness_mape_pct_by_sigma[sigma]:.1f}%"
            for sigma in sorted(result.throughput_mape_pct_by_sigma)
        ),
    )
    errors = result.throughput_mape_pct_by_sigma
    # More measurement noise cannot make the model *more* accurate.
    assert errors[0.08] >= errors[0.0] - 0.5
    for value in errors.values():
        assert value < 30.0
