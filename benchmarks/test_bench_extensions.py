"""Benchmarks for the future-work extensions (beyond the paper's evaluation).

* **Flexible partitioning** — Section 6 of the paper argues the methodology
  extends to finer-grained partitioning on future GPUs; this bench runs the
  allocator over *every* realizable two-application partition state and
  reports how much extra throughput the enlarged space offers and how much
  of it the model-driven allocator captures.
* **Generalization** — leave-one-benchmark-out validation of the
  scalability term and held-out-pair validation of the interference term:
  the error a *new* application (or pair) would see after only a profile
  run.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.extensions import (
    flexible_partitioning_study,
    held_out_pair_validation,
    leave_one_out_validation,
)
from repro.analysis.report import ascii_table
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.pairs import corun_pair


def test_bench_flexible_partitioning(benchmark):
    pairs = [corun_pair(n) for n in ("TI-MI2", "CI-US1", "MI-MI2", "TI-US1", "CI-CI1", "CI-MI1")]
    study = benchmark.pedantic(
        flexible_partitioning_study,
        kwargs={"simulator": PerformanceSimulator(noise=no_noise()), "pairs": pairs},
        rounds=1,
        iterations=1,
    )
    emit(
        f"Extension — flexible partitioning over {study.n_states} states "
        f"(P={study.power_cap_w:.0f} W, alpha={study.alpha})",
        ascii_table(
            ["workload", "best (S1-S4)", "best (all states)", "proposal", "gain", "prop/best"],
            [
                (
                    row.pair,
                    f"{row.best_paper_states:.3f}",
                    f"{row.best_flexible_states:.3f}",
                    f"{row.proposal_flexible:.3f}",
                    f"{row.flexibility_gain:.3f}",
                    f"{row.proposal_vs_best:.3f}",
                )
                for row in study.rows
            ],
        ),
    )
    assert study.n_states > 4
    assert study.mean_flexibility_gain >= 1.0
    assert study.mean_proposal_vs_best > 0.85


def test_bench_leave_one_out_validation(benchmark):
    result = benchmark.pedantic(
        leave_one_out_validation,
        kwargs={"simulator": PerformanceSimulator(noise=no_noise()), "power_caps": (150.0, 250.0)},
        rounds=1,
        iterations=1,
    )
    worst = result.worst_benchmark
    emit(
        "Extension — leave-one-benchmark-out validation of the scalability term",
        f"mean held-out error : {result.mean_error_pct:.1f}%\n"
        f"worst benchmark     : {worst} ({result.error_of(worst):.1f}%)",
    )
    assert result.mean_error_pct < 30.0


def test_bench_held_out_pair_validation(benchmark, context):
    result = benchmark.pedantic(
        held_out_pair_validation,
        args=(context,),
        kwargs={"held_out_pairs": ("TI-MI2", "CI-US1", "MI-MI2")},
        rounds=1,
        iterations=1,
    )
    emit(
        "Extension — held-out co-run pairs (interference-term generalization)",
        "\n".join(
            f"{pair}: {error:.1f}%" for pair, error in sorted(result.per_pair_error_pct.items())
        )
        + f"\nmean: {result.mean_error_pct:.1f}%",
    )
    assert result.mean_error_pct < 30.0
