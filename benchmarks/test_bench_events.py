"""Micro-benchmarks of the discrete-event cluster simulator.

Reported in events/second over a 10k-job Poisson trace (1k in CI smoke
mode).  The event loop has to stay cheap relative to the allocator work it
triggers: the floor asserted here is deliberately loose (CI machines vary)
but catches order-of-magnitude regressions such as an accidentally
quadratic queue scan or a cache-defeating dispatch path.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.events import ClusterSimulator
from repro.cluster.events.events import ArrivalEvent, EventHeap
from repro.cluster.scheduler import SchedulerConfig
from repro.core.workflow import PaperWorkflow
from repro.traces import poisson_trace
from repro.traces.trace import TraceEntry
from repro.workloads.suite import DEFAULT_SUITE

from conftest import emit, scaled


@pytest.fixture(scope="module")
def workflow():
    workflow = PaperWorkflow()
    workflow.train()
    return workflow


def test_bench_event_loop_poisson_trace(workflow):
    """Events/sec replaying a large Poisson trace through the full loop."""
    n_jobs = scaled(10_000, 1_000)
    trace = poisson_trace(8.0, n_jobs=n_jobs, seed=1)
    simulator = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=8,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=230.0, window_size=6
        ),
    )
    start = time.perf_counter()
    report = simulator.run(trace)
    elapsed = time.perf_counter() - start
    events_per_s = report.events_processed / elapsed

    emit(
        f"event loop: {n_jobs}-job Poisson trace",
        f"{report.events_processed} events in {elapsed:.2f}s "
        f"-> {events_per_s:,.0f} events/s\n{report.summary()}",
    )
    assert report.n_jobs == n_jobs
    assert events_per_s > 500.0


def test_bench_event_heap_throughput():
    """Push/pop throughput of the bare event heap (no scheduling work)."""
    n_events = scaled(200_000, 20_000)
    kernel = DEFAULT_SUITE.get("stream")
    events = [
        ArrivalEvent(
            time=float(i % 1000),
            entry=TraceEntry(arrival_time_s=float(i % 1000), app="stream"),
            kernel=kernel,
        )
        for i in range(n_events)
    ]
    heap = EventHeap()
    start = time.perf_counter()
    for event in events:
        heap.push(event)
    while not heap.empty:
        heap.pop()
    elapsed = time.perf_counter() - start
    ops_per_s = 2 * n_events / elapsed

    emit(
        f"event heap: {n_events} push+pop",
        f"{elapsed:.3f}s -> {ops_per_s:,.0f} ops/s",
    )
    assert ops_per_s > 50_000.0
