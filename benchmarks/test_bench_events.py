"""Micro-benchmarks of the discrete-event cluster simulator.

Reported in events/second over a 10k-job Poisson trace (1k in CI smoke
mode), and also written to ``BENCH_events.json`` (see
:func:`conftest.emit_bench_json`) so CI can archive the throughput
trajectory across commits.  The event loop has to stay cheap relative to
the allocator work it triggers: the floor asserted here is deliberately
loose (CI machines vary) but catches order-of-magnitude regressions such
as an accidentally quadratic queue scan or a cache-defeating dispatch
path.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.events import ClusterSimulator
from repro.cluster.events.events import ArrivalEvent, EventHeap
from repro.cluster.scheduler import SchedulerConfig
from repro.core.workflow import PaperWorkflow
from repro.traces import poisson_trace
from repro.traces.trace import TraceEntry
from repro.workloads.suite import DEFAULT_SUITE

from conftest import SMOKE_MODE, emit, emit_bench_json, scaled


@pytest.fixture(scope="module")
def workflow():
    workflow = PaperWorkflow()
    workflow.train()
    return workflow


def test_bench_event_loop_poisson_trace(workflow):
    """Events/sec replaying a large Poisson trace through the full loop."""
    n_jobs = scaled(10_000, 1_000)
    n_nodes = 8
    trace = poisson_trace(8.0, n_jobs=n_jobs, seed=1)
    simulator = ClusterSimulator.from_workflow(
        workflow,
        n_nodes=n_nodes,
        scheduler_config=SchedulerConfig(
            policy_name="problem1", power_cap_w=230.0, window_size=6
        ),
    )
    start = time.perf_counter()
    report = simulator.run(trace)
    elapsed = time.perf_counter() - start
    events_per_s = report.events_processed / elapsed
    stats = simulator.scheduler.stats
    decisions_per_s = stats.plans_requested / elapsed

    emit(
        f"event loop: {n_jobs}-job Poisson trace",
        f"{report.events_processed} events in {elapsed:.2f}s "
        f"-> {events_per_s:,.0f} events/s "
        f"({decisions_per_s:,.0f} scheduling decisions/s)\n{report.summary()}",
    )
    emit_bench_json(
        "events",
        {
            "benchmark": "event_loop_poisson_trace",
            "n_jobs": n_jobs,
            "n_nodes": n_nodes,
            "events_processed": report.events_processed,
            "elapsed_s": elapsed,
            "events_per_s": events_per_s,
            "decisions_per_s": decisions_per_s,
            "scheduler_stats": stats.as_dict(),
            "smoke_mode": SMOKE_MODE,
        },
    )
    assert report.n_jobs == n_jobs
    assert events_per_s > 1000.0


def test_bench_event_heap_throughput():
    """Push/pop throughput of the bare event heap (no scheduling work)."""
    n_events = scaled(200_000, 20_000)
    kernel = DEFAULT_SUITE.get("stream")
    events = [
        ArrivalEvent(
            time=float(i % 1000),
            entry=TraceEntry(arrival_time_s=float(i % 1000), app="stream"),
            kernel=kernel,
        )
        for i in range(n_events)
    ]
    heap = EventHeap()
    start = time.perf_counter()
    for event in events:
        heap.push(event)
    while not heap.empty:
        heap.pop()
    elapsed = time.perf_counter() - start
    ops_per_s = 2 * n_events / elapsed

    emit(
        f"event heap: {n_events} push+pop",
        f"{elapsed:.3f}s -> {ops_per_s:,.0f} ops/s",
    )
    assert ops_per_s > 50_000.0
