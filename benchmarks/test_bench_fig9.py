"""Benchmark regenerating Figure 9: Problem 1 at 230 W, alpha = 0.2.

Paper shape: across all 18 workloads the proposal's throughput sits close to
the measured best (geometric means 1.52 vs 1.54 on the A100), clearly above
the worst feasible configuration, with no fairness violations.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure9_problem1
from repro.analysis.report import render_comparison


def test_bench_figure9_problem1_throughput(benchmark, context):
    data = benchmark.pedantic(figure9_problem1, args=(context,), rounds=1, iterations=1)
    emit(
        f"Figure 9 — Problem 1 throughput (P={data.power_cap_w:.0f} W, alpha={data.alpha})",
        render_comparison(data.comparison, "throughput"),
    )
    summary = data.comparison
    assert len(summary.rows) == 18
    # Proposal ranks between worst and best for every workload ...
    for row in summary.rows:
        assert row.worst - 1e-9 <= row.proposal <= row.best + 1e-9
    # ... and is near-optimal in the geometric mean (paper: 1.52 vs 1.54).
    assert summary.geomean_proposal >= 0.95 * summary.geomean_best
    assert summary.geomean_proposal > summary.geomean_worst
    # No fairness violations occurred for the proposal (as in the paper).
    assert summary.fairness_violations == 0
