"""Benchmark regenerating Figure 6: co-run throughput per partition state.

Paper shape (P = 250 W):

* **TI-MI2** (igemm4 + stream) — the best configuration gives the Tensor
  kernel the larger partition and uses the *shared* memory option so that
  stream can use the whole chip bandwidth (S1); the paper reports the best
  state beating the worst by ~34 %.
* **CI-US** (the paper's prose example is dgemm + dwt2d) — the *private*
  option wins because the kernels need no extra bandwidth and isolation
  removes the LLC interference; the paper reports ~25 % over the worst.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure6_corun_throughput
from repro.analysis.report import render_figure6


def test_bench_figure6_corun_throughput(benchmark, context):
    data = benchmark.pedantic(figure6_corun_throughput, args=(context,), rounds=1, iterations=1)
    emit("Figure 6 — co-run throughput per partition state (250 W)", render_figure6(data))

    # TI-MI2: shared + more GPCs for the Tensor kernel wins by a wide margin.
    assert data.best_state("TI-MI2") == "S1"
    assert data.spread("TI-MI2") > 1.2  # paper: 1.34

    # CI-US1: a private configuration wins (interference isolation).
    assert data.best_state("CI-US1") in ("S3", "S4")
    assert data.spread("CI-US1") > 1.05  # paper: 1.25 for its CI-US example

    # The S1-vs-S2 ordering encodes the job-allocation decision: giving the
    # Tensor-intensive application the larger share must beat the opposite.
    ti_mi = data.throughput["TI-MI2"]
    assert ti_mi["S1"] > ti_mi["S2"]
    assert ti_mi["S3"] > ti_mi["S4"]
