"""Benchmark regenerating Figure 4: scalability per partitioning option.

Paper shape (P = 250 W, one benchmark per class):

* ``kmeans`` (US) — flat near 1.0 for any GPC count and either option;
* ``stream`` (MI) — the *private* option scales with the memory slices the
  partition owns, the *shared* option saturates with very few GPCs;
* ``dgemm``/``hgemm`` (CI/TI) — scale with the GPC count, and the memory
  option makes no difference.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure4_scalability_partitioning
from repro.analysis.report import render_scalability
from repro.gpu.mig import MemoryOption


def test_bench_figure4_scalability_partitioning(benchmark, context):
    data = benchmark.pedantic(
        figure4_scalability_partitioning, args=(context,), rounds=1, iterations=1
    )
    emit("Figure 4 — scalability vs partitioning option (250 W)", render_scalability(data, ""))

    # kmeans: un-scalable, flat.
    for option in (MemoryOption.PRIVATE, MemoryOption.SHARED):
        curve = data.curve("kmeans", option)
        assert curve.value_at(1) > 0.9 and curve.value_at(7) > 0.9

    # stream: option matters; private tracks the slice count.
    stream_private = data.curve("stream", MemoryOption.PRIVATE)
    stream_shared = data.curve("stream", MemoryOption.SHARED)
    assert stream_private.value_at(1) < 0.25
    assert stream_private.value_at(7) > 0.9
    assert stream_shared.value_at(2) > 0.85
    assert stream_shared.value_at(3) > 2 * stream_private.value_at(3) * 0.9

    # dgemm / hgemm: scale with GPCs, option-insensitive.
    for name in ("dgemm", "hgemm"):
        private = data.curve(name, MemoryOption.PRIVATE)
        shared = data.curve(name, MemoryOption.SHARED)
        for gpcs in (1, 2, 3, 4, 7):
            assert abs(private.value_at(gpcs) - shared.value_at(gpcs)) < 0.1
        assert private.value_at(7) > 4 * private.value_at(1)
