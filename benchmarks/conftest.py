"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's evaluation
section.  They share one trained :class:`EvaluationContext` per session so
that the offline calibration cost is paid exactly once.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.context import EvaluationContext  # noqa: E402


@pytest.fixture(scope="session")
def context() -> EvaluationContext:
    """A fully trained evaluation context shared by every benchmark."""
    return EvaluationContext.create()


def emit(title: str, body: str) -> None:
    """Print a rendered table/series so ``pytest -s`` shows the paper data."""
    print(f"\n=== {title} ===\n{body}\n")
