"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's evaluation
section.  They share one trained :class:`EvaluationContext` per session so
that the offline calibration cost is paid exactly once.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.context import EvaluationContext  # noqa: E402

#: CI sets REPRO_BENCH_SMOKE=1 to shrink the workloads while still running
#: every benchmark end to end.
SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def scaled(full: int, smoke: int) -> int:
    """``full`` normally, ``smoke`` when the suite runs in CI smoke mode."""
    return smoke if SMOKE_MODE else full


@pytest.fixture(scope="session")
def context() -> EvaluationContext:
    """A fully trained evaluation context shared by every benchmark."""
    return EvaluationContext.create()


def emit(title: str, body: str) -> None:
    """Print a rendered table/series so ``pytest -s`` shows the paper data."""
    print(f"\n=== {title} ===\n{body}\n")


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable benchmark result next to the repo (or to
    ``$REPRO_BENCH_DIR``) as ``BENCH_<name>.json``.

    CI uploads these files as artifacts so the throughput trajectory can
    be tracked across commits without scraping pytest output.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", Path(__file__).resolve().parents[1]))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
