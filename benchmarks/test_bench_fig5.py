"""Benchmark regenerating Figure 5: scalability per power cap (shared option).

Paper shape: lowering the chip cap from 250 W to 150 W barely moves kmeans
and stream, visibly slows dgemm at large GPC counts, and hits the
Tensor-Core-intensive hgemm hardest; small partitions are unaffected because
they cannot draw enough power to hit the cap.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.figures import figure5_scalability_power
from repro.analysis.report import render_scalability


def test_bench_figure5_scalability_power_caps(benchmark, context):
    data = benchmark.pedantic(figure5_scalability_power, args=(context,), rounds=1, iterations=1)
    emit("Figure 5 — scalability vs power cap (shared option)", render_scalability(data, ""))

    def drop_at_7gpcs(kernel: str) -> float:
        return 1.0 - data.curve(kernel, 150).value_at(7) / data.curve(kernel, 250).value_at(7)

    # Power capping matters most for the Tensor-intensive kernel, then the
    # compute-intensive one, and is negligible for memory-bound/unscalable.
    assert drop_at_7gpcs("hgemm") > 0.15
    assert drop_at_7gpcs("hgemm") > drop_at_7gpcs("dgemm")
    assert drop_at_7gpcs("dgemm") > 0.02
    assert abs(drop_at_7gpcs("stream")) < 0.05
    assert abs(drop_at_7gpcs("kmeans")) < 0.05

    # Small partitions never hit the cap.
    for kernel in ("hgemm", "dgemm"):
        assert data.curve(kernel, 150).value_at(1) == pytest.approx(
            data.curve(kernel, 250).value_at(1), rel=0.06
        )

    # Trend check: raising the cap from 150 W to 250 W never hurts, at any
    # scale.  (Adjacent caps are not compared point-by-point because each
    # measured point carries independent noise of a few percent.)
    for kernel in ("hgemm", "dgemm", "stream", "kmeans"):
        for gpcs in (1, 4, 7):
            low = data.curve(kernel, 150).value_at(gpcs)
            high = data.curve(kernel, 250).value_at(gpcs)
            assert high >= low - 0.08
