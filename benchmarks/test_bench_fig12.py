"""Benchmark regenerating Figure 12: Problem 2 power-cap selections.

Paper shape: the selected cap differs per workload and is sensitive to the
fairness threshold — with the stricter alpha the allocator has to grant more
power to the workloads that suffer from throttling (the Tensor-/compute-
intensive mixes), while memory-bound and unscalable mixes stay at low caps.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.figures import figure12_problem2_power_selection
from repro.analysis.report import ascii_table


def test_bench_figure12_problem2_power_selection(benchmark, context):
    data = benchmark.pedantic(
        figure12_problem2_power_selection, args=(context,), rounds=1, iterations=1
    )
    for alpha, rows in sorted(data.per_alpha.items()):
        emit(
            f"Figure 12 — Problem 2 selected power caps (alpha={alpha})",
            ascii_table(
                ["workload", "worst P[W]", "proposal P[W]", "best P[W]"],
                [
                    (r.pair, f"{r.worst_power_w:.0f}", f"{r.proposal_power_w:.0f}", f"{r.best_power_w:.0f}")
                    for r in rows
                ],
            ),
        )

    low = {r.pair: r for r in data.per_alpha[0.20]}
    high = {r.pair: r for r in data.per_alpha[0.42]}
    shared = sorted(set(low) & set(high))
    assert len(low) == 18
    assert len(shared) >= 12

    # Every selected cap comes from the Table 5 grid.
    for rows in data.per_alpha.values():
        for row in rows:
            assert row.proposal_power_w in context.config.power_caps
            assert row.best_power_w in context.config.power_caps

    # The proposal never *reduces* the cap when the constraint tightens, and
    # the measured-best cap strictly increases for at least one workload.
    assert all(high[p].proposal_power_w >= low[p].proposal_power_w for p in shared)
    assert any(high[p].best_power_w > low[p].best_power_w for p in shared)

    # Unscalable pairs are the cheapest to run: their proposal picks the
    # lowest cap at the relaxed threshold.
    assert low["US-US1"].proposal_power_w == min(context.config.power_caps)
    assert low["US-US2"].proposal_power_w == min(context.config.power_caps)
